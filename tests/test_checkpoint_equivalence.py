"""Checkpoint-resume fidelity: forked runs must equal full replay.

The checkpoint engine is a pure performance feature — every experiment
resumed from a golden-prefix snapshot must produce an
``ExperimentRecord`` field-for-field identical (wall clock aside) to the
full-replay reference oracle, across all four campaign styles, serial
and process-pooled, including faults at the first and last eligible
injection ticks and sparse capture strides with nearest-earlier
fallback.
"""

import pickle
from dataclasses import asdict, replace

import pytest

from repro.core import (Campaign, CampaignConfig, CheckpointStore,
                        FaultSpec, run_scenario,
                        run_scenario_from_checkpoint)
from repro.core.persistence import (config_fingerprint, load_golden_traces,
                                    save_golden_traces)
from repro.sim import highway_cruise, lead_vehicle_cutin


def small_scenarios():
    return [replace(highway_cruise(), duration=24.0),
            replace(lead_vehicle_cutin(), duration=16.0)]


def make_campaign(use_checkpoints: bool, stride: int = 1,
                  cache_dir=None) -> Campaign:
    config = CampaignConfig(use_checkpoints=use_checkpoints,
                            checkpoint_stride=stride)
    return Campaign(small_scenarios(), config, cache_dir=cache_dir)


def strip_wall(records):
    rows = []
    for record in records:
        row = asdict(record)
        row.pop("wall_seconds")   # host timing necessarily differs
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def oracle():
    """Full-replay reference campaign (checkpoints disabled)."""
    return make_campaign(use_checkpoints=False)


@pytest.fixture(scope="module")
def forked():
    """Checkpoint-resume campaign over the same scenario set."""
    return make_campaign(use_checkpoints=True)


class TestSnapshotRoundtrip:
    def test_resume_reproduces_suffix_bitwise(self):
        """Mid-run snapshot -> restore -> identical continuation."""
        scenario = small_scenarios()[0]
        run = run_scenario(scenario, record_trace=True,
                           checkpoint_ticks=[100])
        checkpoint = run.checkpoints[100]
        fault = FaultSpec("brake", 0.0, 200, 4)
        full = run_scenario(scenario, faults=[fault], record_trace=True)
        resumed = run_scenario_from_checkpoint(scenario, checkpoint,
                                               faults=[fault],
                                               record_trace=True)
        assert resumed.sim_seconds == full.sim_seconds
        assert resumed.min_delta_long == full.min_delta_long
        # The resumed trace is the suffix of the full trace, bit for bit.
        full_arrays = full.trace.as_arrays()
        resumed_arrays = resumed.trace.as_arrays()
        offset = len(full.trace) - len(resumed.trace)
        assert offset > 0
        for name, column in resumed_arrays.items():
            assert column.tolist() == full_arrays[name][offset:].tolist()

    def test_checkpoint_is_picklable(self):
        scenario = small_scenarios()[0]
        run = run_scenario(scenario, record_trace=False,
                           checkpoint_ticks=[120])
        checkpoint = pickle.loads(pickle.dumps(run.checkpoints[120]))
        fault = FaultSpec("throttle", 1.0, 140, 4)
        direct = run_scenario_from_checkpoint(scenario,
                                              run.checkpoints[120],
                                              faults=[fault])
        via_pickle = run_scenario_from_checkpoint(scenario, checkpoint,
                                                  faults=[fault])
        assert via_pickle.min_delta_long == direct.min_delta_long
        assert via_pickle.sim_seconds == direct.sim_seconds

    def test_resume_rejects_faults_before_checkpoint(self):
        scenario = small_scenarios()[0]
        run = run_scenario(scenario, record_trace=False,
                           checkpoint_ticks=[200])
        with pytest.raises(ValueError):
            run_scenario_from_checkpoint(
                scenario, run.checkpoints[200],
                faults=[FaultSpec("brake", 0.0, 100, 4)])

    def test_resume_requires_faults(self):
        scenario = small_scenarios()[0]
        run = run_scenario(scenario, record_trace=False,
                           checkpoint_ticks=[100])
        with pytest.raises(ValueError):
            run_scenario_from_checkpoint(scenario, run.checkpoints[100])


class TestSingleFaultFidelity:
    @pytest.mark.parametrize("position", ["first", "last"])
    @pytest.mark.parametrize("variable,value", [("brake", 0.0),
                                                ("throttle", 1.0)])
    def test_edge_tick_records_identical(self, oracle, forked, position,
                                         variable, value):
        """Faults at the first and last eligible injection ticks."""
        for scenario in oracle.scenarios:
            ticks = oracle.injection_ticks(scenario)
            tick = ticks[0] if position == "first" else ticks[-1]
            fault = FaultSpec(variable, value, tick,
                              oracle.config.fault_duration_ticks)
            reference = oracle.run_fault(scenario.name, fault)
            resumed = forked.run_fault(scenario.name, fault)
            assert strip_wall([resumed]) == strip_wall([reference])


class TestCampaignStyleFidelity:
    """All four campaign styles, serial and workers=2."""

    @pytest.mark.parametrize("workers", [None, 2])
    def test_random_campaign(self, oracle, forked, workers):
        reference = oracle.random_campaign(8, seed=11, workers=workers)
        resumed = forked.random_campaign(8, seed=11, workers=workers)
        assert strip_wall(resumed.records) == strip_wall(reference.records)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_exhaustive_campaign(self, oracle, forked, workers):
        reference = oracle.exhaustive_campaign(
            tick_stride=40, variable_names=["brake", "steering"],
            workers=workers)
        resumed = forked.exhaustive_campaign(
            tick_stride=40, variable_names=["brake", "steering"],
            workers=workers)
        assert strip_wall(resumed.records) == strip_wall(reference.records)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_architectural_campaign(self, oracle, forked, workers):
        reference, ref_outcomes = oracle.architectural_campaign(
            30, seed=3, workers=workers)
        resumed, res_outcomes = forked.architectural_campaign(
            30, seed=3, workers=workers)
        assert res_outcomes == ref_outcomes
        assert strip_wall(resumed.records) == strip_wall(reference.records)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_bayesian_campaign(self, oracle, forked, workers):
        reference = oracle.bayesian_campaign(top_k=6, workers=workers)
        resumed = forked.bayesian_campaign(top_k=6, workers=workers)
        assert [(c.scenario, c.injection_tick, c.variable, c.value)
                for c in resumed.candidates] == \
               [(c.scenario, c.injection_tick, c.variable, c.value)
                for c in reference.candidates]
        assert strip_wall(resumed.summary.records) == \
            strip_wall(reference.summary.records)


class TestStrideFallback:
    def test_sparse_stride_resumes_from_nearest_earlier(self, oracle):
        """With stride 7, most faults land between snapshots."""
        sparse = make_campaign(use_checkpoints=True, stride=7)
        scenario = sparse.scenarios[0]
        captured = set(sparse._capture_ticks(scenario))
        ticks = oracle.injection_ticks(scenario)
        uncaptured = [t for t in ticks if t not in captured]
        assert uncaptured, "stride must leave gaps for this test"
        for tick in (uncaptured[0], uncaptured[-1]):
            fault = FaultSpec("brake", 0.0, tick,
                              oracle.config.fault_duration_ticks)
            reference = oracle.run_fault(scenario.name, fault)
            resumed = sparse.run_fault(scenario.name, fault)
            nearest = sparse.checkpoints.nearest(scenario.name, tick)
            assert nearest is not None and nearest.tick < tick
            assert strip_wall([resumed]) == strip_wall([reference])

    def test_empty_store_falls_back_to_full_replay(self, oracle):
        scenario = oracle.scenarios[0]
        tick = oracle.injection_ticks(scenario)[5]
        fault = FaultSpec("brake", 0.0, tick, 4)
        from repro.core.parallel import execute_experiment
        reference = execute_experiment(scenario, oracle.config, fault)
        via_empty = execute_experiment(scenario, oracle.config, fault,
                                       CheckpointStore())
        assert strip_wall([via_empty]) == strip_wall([reference])


class TestGoldenTraceCache:
    def test_roundtrip_preserves_runs_and_mining(self, tmp_path, oracle):
        fingerprint = config_fingerprint(
            oracle.config.ads, oracle.config.safety, oracle.config.seed,
            ((s.name, s.duration) for s in oracle.scenarios))
        path = tmp_path / "golden.json"
        save_golden_traces(oracle.golden_runs(), path, fingerprint)
        loaded = load_golden_traces(path, fingerprint)
        assert loaded is not None
        for name, run in oracle.golden_runs().items():
            restored = loaded[name]
            assert restored.hazard == run.hazard
            assert restored.min_delta_long == run.min_delta_long
            assert len(restored.trace) == len(run.trace)
            for column in run.trace.columns:
                assert restored.trace.column(column).tolist() == \
                    run.trace.column(column).tolist()

    def test_stale_fingerprint_is_rejected(self, tmp_path, oracle):
        path = tmp_path / "golden.json"
        save_golden_traces(oracle.golden_runs(), path, "fp-old")
        assert load_golden_traces(path, "fp-new") is None
        assert load_golden_traces(tmp_path / "missing.json", "x") is None

    def test_campaign_warm_start_matches_fresh(self, tmp_path):
        cold = make_campaign(use_checkpoints=True, cache_dir=tmp_path)
        cold_result = cold.bayesian_campaign(top_k=4)
        assert any(tmp_path.glob("golden-*.json.gz"))
        assert any(tmp_path.glob("candidates-*.json"))

        warm = make_campaign(use_checkpoints=True, cache_dir=tmp_path)
        warm_result = warm.bayesian_campaign(top_k=4)
        # Warm start loads both golden traces and mined candidates.
        assert warm_result.mining.wall_seconds == 0.0
        assert [(c.scenario, c.injection_tick, c.variable, c.value)
                for c in warm_result.candidates] == \
               [(c.scenario, c.injection_tick, c.variable, c.value)
                for c in cold_result.candidates]
        assert strip_wall(warm_result.summary.records) == \
            strip_wall(cold_result.summary.records)
