"""Batched validation equals the scalar oracle, record for record.

The acceptance contract of the vectorized batch engine: every campaign
style run with ``batch_sim=N`` emits a record stream *bit-for-bit*
identical (wall-clock timing aside) to the scalar
:class:`~repro.sim.world.World` reference — order included — across
the serial barrier path, the process pool, and the streaming pipeline
driver.  The streams here include interface faults (drop / freeze /
delay / jitter / hang) and graceful-degradation outcomes, so the
batched path is held to the full PR-8 fault surface, not just value
corruption.  Checkpoint-forked batched validation must likewise equal
the full-replay reference, at both the campaign and engine levels.
"""

from dataclasses import asdict, replace

import pytest

from repro.arch.injector import Outcome
from repro.core import Campaign, CampaignConfig, ListSink
from repro.core.fault_models import ArchFaultOutcome
from repro.core.interface_faults import CHANNELS, interface_fault
from repro.core.simulate import FaultSpec, run_experiments_batched
from repro.sim import highway_cruise, lead_vehicle_cutin, two_lead_reveal

#: Lanes per fused batch in every batched run below.  Three splits the
#: per-scenario job lists into uneven chunks (full + remainder), which
#: is the shape that catches chunking / reorder bugs.
BATCH = 3

STYLES = ["random", "exhaustive", "architectural", "bayesian"]


def small_scenarios():
    return [replace(highway_cruise(), duration=24.0),
            replace(lead_vehicle_cutin(), duration=16.0),
            replace(two_lead_reveal(), duration=18.0)]


def strip_wall(records):
    rows = []
    for record in records:
        row = asdict(record)
        row.pop("wall_seconds")   # host timing necessarily differs
        rows.append(row)
    return rows


class HangingModel:
    """Architectural stub that always hangs, forcing interface faults
    through the batched architectural path (register flips hang too
    rarely to cover it reliably)."""

    def sample(self, rng, injection_ticks, duration_ticks=2,
               interface_hangs=False):
        tick = int(injection_ticks[int(rng.integers(len(injection_ticks)))])
        channel = CHANNELS[int(rng.integers(len(CHANNELS)))]
        fault = (interface_fault("hang", channel, tick,
                                 duration_ticks=duration_ticks)
                 if interface_hangs else None)
        return ArchFaultOutcome(kernel="dot16", outcome=Outcome.HANG,
                                relative_error=0.0, fault=fault)


def run_style(style, *, batch_sim, pipeline, workers):
    sink = ListSink()
    campaign = Campaign(small_scenarios(), CampaignConfig())
    kwargs = dict(pipeline=pipeline, workers=workers, record_sink=sink,
                  batch_sim=batch_sim)
    if style == "random":
        campaign.random_campaign(12, seed=11, interface_share=0.5,
                                 **kwargs)
    elif style == "exhaustive":
        campaign.exhaustive_campaign(tick_stride=40,
                                     variable_names=["brake"],
                                     interface_grid=True, **kwargs)
    elif style == "architectural":
        campaign.architectural_campaign(8, model=HangingModel(), seed=3,
                                        interface_hangs=True, **kwargs)
    else:
        campaign.bayesian_campaign(top_k=4,
                                   interface_probe=("freeze", "delay"),
                                   **kwargs)
    return strip_wall(sink.records)


@pytest.fixture(scope="module")
def scalar_reference():
    """Scalar-oracle record streams, one serial barrier run per style."""
    cache = {}

    def get(style):
        if style not in cache:
            cache[style] = run_style(style, batch_sim=0, pipeline=False,
                                     workers=None)
        return cache[style]

    return get


class TestBatchedDriverEquivalence:
    """batch_sim=N == batch_sim=0 for every style and every driver."""

    @pytest.mark.parametrize("style", STYLES)
    @pytest.mark.parametrize("pipeline", [False, True])
    @pytest.mark.parametrize("workers", [None, 2])
    def test_records_equal_scalar_oracle(self, scalar_reference, style,
                                         pipeline, workers):
        reference = scalar_reference(style)
        assert reference, "oracle campaign produced no records"
        batched = run_style(style, batch_sim=BATCH, pipeline=pipeline,
                            workers=workers)
        assert batched == reference

    def test_streams_cover_the_interface_fault_surface(self,
                                                       scalar_reference):
        """The equality above must be exercised on PR-8 faults too."""
        kinds = {row["kind"] for style in STYLES
                 for row in scalar_reference(style)}
        assert "value" in kinds
        assert kinds - {"value"}, "no interface faults in any stream"

    def test_single_lane_batch_is_still_batched_code(self,
                                                     scalar_reference):
        """batch_sim=2 with odd job counts runs 1-lane tail chunks."""
        batched = run_style("random", batch_sim=2, pipeline=True,
                            workers=None)
        assert batched == scalar_reference("random")


class TestFusedADSPath:
    """The batched runs above must actually exercise the fused ADS
    engine — and an all-peeled configuration must still match."""

    def test_default_config_fuses_lanes(self, monkeypatch):
        from repro.ads.batch import BatchADSState
        attached = []
        original = BatchADSState.attach

        def counting(self, slot, pipeline):
            attached.append(slot)
            return original(self, slot, pipeline)

        monkeypatch.setattr(BatchADSState, "attach", counting)
        run_style("random", batch_sim=BATCH, pipeline=False, workers=None)
        assert attached, "no lane ever took the fused ADS path"

    def test_forced_peel_still_matches_scalar(self):
        """``planner_divisor=6`` leaves plans staler than the default
        degradation TTL, so :func:`can_fuse` rejects every lane and the
        safe-stop fallback engages routinely — the all-peeled batched
        driver must still equal the scalar oracle, degradation
        included."""
        from repro.ads.batch import can_fuse
        from repro.ads.runtime import ADSConfig, ADSPipeline
        ads = replace(ADSConfig(), planner_divisor=6)
        assert not can_fuse(ADSPipeline(ads))

        def run(batch_sim):
            sink = ListSink()
            campaign = Campaign(small_scenarios(),
                                CampaignConfig(ads=ads))
            campaign.random_campaign(8, seed=5, interface_share=0.3,
                                     batch_sim=batch_sim, pipeline=False,
                                     record_sink=sink)
            return strip_wall(sink.records)

        reference = run(0)
        assert run(BATCH) == reference
        assert any(row["degraded"] for row in reference)


class TestCheckpointForkOracle:
    """Checkpoint-forked batched validation == full replay from t=0."""

    @pytest.mark.parametrize("pipeline", [False, True])
    def test_campaign_fork_equals_full_replay(self, pipeline):
        def run(use_checkpoints):
            sink = ListSink()
            campaign = Campaign(
                small_scenarios(),
                CampaignConfig(use_checkpoints=use_checkpoints))
            campaign.random_campaign(10, seed=7, interface_share=0.4,
                                     batch_sim=BATCH, pipeline=pipeline,
                                     record_sink=sink)
            return strip_wall(sink.records)

        assert run(True) == run(False)

    def test_engine_fork_equals_full_replay(self):
        campaign = Campaign(small_scenarios(), CampaignConfig())
        campaign.golden_runs()
        scenario = campaign.scenarios[1]
        config = campaign.config
        fault_lists = [
            [FaultSpec(variable="brake", value=0.0, start_tick=tick)]
            for tick in (40, 55, 70, 90)]
        forks = [campaign.checkpoints.nearest(scenario.name,
                                              faults[0].start_tick)
                 for faults in fault_lists]
        assert all(forks), "golden run captured no usable checkpoints"

        def run(checkpoints):
            results = run_experiments_batched(
                scenario, fault_lists, ads_config=config.ads,
                safety_config=config.safety, seed=config.seed,
                checkpoints=checkpoints,
                horizon_after_fault=config.horizon_after_fault,
                batch_size=BATCH, record_trace=False)
            rows = []
            for result in results:
                row = asdict(result)
                row.pop("wall_seconds")
                row.pop("trace")     # None with record_trace=False
                rows.append(row)
            return rows

        assert run(forks) == run(None)
