"""Sharded golden collection and streamed records must equal the oracle.

Three pure performance features ride the campaign engine: golden-run
collection sharded over the process pool, checkpoint stores persisted
for spawn-safe cross-process reuse, and records streamed to a sink
instead of accumulated in memory.  None of them may change a single
number: sharded golden runs must be bit-for-bit the serial loop's,
streamed campaigns must be record-for-record the in-memory ones across
all four campaign styles, and a JSONL stream must reload into an
equivalent summary — non-finite safety potentials included.
"""

import json
import math
import pickle
from dataclasses import asdict, replace

import pytest

from repro.core import (Campaign, CampaignConfig, CheckpointStore,
                        ExperimentRecord, FaultSpec, Hazard, ListSink,
                        run_experiments)
from repro.core.parallel import collect_golden_runs
from repro.core.persistence import (JsonlRecordSink, iter_records_jsonl,
                                    load_summary_jsonl, record_from_dict,
                                    record_to_dict)
from repro.core.results import CampaignSummary
from repro.sim import highway_cruise, lead_vehicle_cutin, queued_traffic


def small_scenarios():
    return [replace(highway_cruise(), duration=24.0),
            replace(lead_vehicle_cutin(), duration=16.0),
            replace(queued_traffic(), duration=18.0)]


def make_campaign(cache_dir=None) -> Campaign:
    return Campaign(small_scenarios(), CampaignConfig(),
                    cache_dir=cache_dir)


def strip_wall(records):
    rows = []
    for record in records:
        row = asdict(record)
        row.pop("wall_seconds")   # host timing necessarily differs
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def serial_campaign():
    """Golden runs collected by the serial oracle loop."""
    campaign = make_campaign()
    campaign.golden_runs()
    return campaign


@pytest.fixture(scope="module")
def sharded_campaign():
    """Golden runs collected over a two-worker pool."""
    campaign = make_campaign()
    campaign.golden_runs(workers=2)
    return campaign


class TestShardedGoldenRuns:
    def test_traces_bit_for_bit(self, serial_campaign, sharded_campaign):
        serial = serial_campaign.golden_runs()
        sharded = sharded_campaign.golden_runs()
        assert list(serial) == list(sharded)   # scenario order preserved
        for name, reference in serial.items():
            run = sharded[name]
            assert run.hazard == reference.hazard
            assert run.min_delta_long == reference.min_delta_long
            assert run.min_delta_lat == reference.min_delta_lat
            assert run.sim_seconds == reference.sim_seconds
            reference_arrays = reference.trace.as_arrays()
            for column, array in run.trace.as_arrays().items():
                assert array.tolist() == \
                    reference_arrays[column].tolist(), column

    def test_checkpoint_ladders_match(self, serial_campaign,
                                      sharded_campaign):
        for scenario in small_scenarios():
            assert sharded_campaign.checkpoints.ticks(scenario.name) == \
                serial_campaign.checkpoints.ticks(scenario.name)
            assert sharded_campaign.checkpoints.has_scenario(scenario.name)

    def test_sharded_validation_matches_serial(self, serial_campaign,
                                               sharded_campaign):
        """Records resumed from worker-captured ladders equal the oracle."""
        scenario = small_scenarios()[0]
        tick = serial_campaign.injection_ticks(scenario)[4]
        fault = FaultSpec("brake", 0.0, tick, 4)
        reference = serial_campaign.run_fault(scenario.name, fault)
        resumed = sharded_campaign.run_fault(scenario.name, fault)
        assert strip_wall([resumed]) == strip_wall([reference])


class TestStreamedRecords:
    """All four campaign styles: sink-streamed == in-memory, in order."""

    @pytest.mark.parametrize("workers", [None, 2])
    def test_random_campaign(self, serial_campaign, workers):
        reference = serial_campaign.random_campaign(8, seed=11)
        sink = ListSink()
        streamed = serial_campaign.random_campaign(
            8, seed=11, workers=workers, record_sink=sink)
        assert strip_wall(sink.records) == strip_wall(reference.records)
        assert streamed.records == []          # not retained
        assert streamed.same_aggregates(reference)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_exhaustive_campaign(self, serial_campaign, workers):
        reference = serial_campaign.exhaustive_campaign(
            tick_stride=40, variable_names=["brake", "steering"])
        sink = ListSink()
        streamed = serial_campaign.exhaustive_campaign(
            tick_stride=40, variable_names=["brake", "steering"],
            workers=workers, record_sink=sink)
        assert strip_wall(sink.records) == strip_wall(reference.records)
        assert streamed.records == []
        assert streamed.same_aggregates(reference)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_architectural_campaign(self, serial_campaign, workers):
        reference, ref_outcomes = serial_campaign.architectural_campaign(
            25, seed=3)
        sink = ListSink()
        streamed, outcomes = serial_campaign.architectural_campaign(
            25, seed=3, workers=workers, record_sink=sink)
        assert outcomes == ref_outcomes
        assert strip_wall(sink.records) == strip_wall(reference.records)
        assert streamed.records == []
        assert streamed.same_aggregates(reference)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_bayesian_campaign(self, serial_campaign, workers):
        reference = serial_campaign.bayesian_campaign(top_k=6)
        sink = ListSink()
        streamed = serial_campaign.bayesian_campaign(
            top_k=6, workers=workers, record_sink=sink)
        assert [(c.scenario, c.injection_tick, c.variable, c.value)
                for c in streamed.candidates] == \
               [(c.scenario, c.injection_tick, c.variable, c.value)
                for c in reference.candidates]
        assert strip_wall(sink.records) == \
            strip_wall(reference.summary.records)
        assert streamed.summary.records == []
        assert streamed.summary.same_aggregates(reference.summary)
        # Regression: precision must read the incremental aggregates,
        # not the (empty) retained-record list.
        assert streamed.precision == reference.precision


class TestJsonlStreaming:
    def synthetic_record(self, **overrides) -> ExperimentRecord:
        fields = dict(
            scenario="s", injection_tick=40, variable="throttle",
            value=1.0, duration_ticks=4, seed=0, hazard=Hazard.NONE,
            landed=True, pre_delta_long=12.5, pre_delta_lat=2.0,
            min_delta_long=3.25, min_delta_lat=1.5, sim_seconds=10.0,
            wall_seconds=0.125)
        fields.update(overrides)
        return ExperimentRecord(**fields)

    def test_non_finite_floats_round_trip(self):
        """Regression: inf potentials and NaNs survive strict JSON."""
        record = self.synthetic_record(
            pre_delta_long=math.inf, pre_delta_lat=-math.inf,
            min_delta_long=math.nan, min_delta_lat=math.inf)
        payload = json.dumps(record_to_dict(record), allow_nan=False)
        restored = record_from_dict(json.loads(payload))
        assert restored.pre_delta_long == math.inf
        assert restored.pre_delta_lat == -math.inf
        assert math.isnan(restored.min_delta_long)
        assert restored.min_delta_lat == math.inf
        assert restored.value == record.value

    def test_sink_writes_strict_json_lines(self, tmp_path):
        path = tmp_path / "records.jsonl"
        records = [self.synthetic_record(injection_tick=t,
                                         min_delta_long=math.inf)
                   for t in (10, 20, 30)]
        with JsonlRecordSink(path) as sink:
            for record in records:
                sink.add(record)
            assert sink.count == 3
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 3
        for line in lines:
            json.loads(line)            # every line is valid JSON
            assert "Infinity" in line   # spelled as a string, not a token
        assert strip_wall(iter_records_jsonl(path)) == strip_wall(records)

    def test_campaign_stream_reloads_into_equivalent_summary(
            self, tmp_path, serial_campaign):
        reference = serial_campaign.random_campaign(6, seed=7)
        path = tmp_path / "random.jsonl"
        with JsonlRecordSink(path) as sink:
            streamed = serial_campaign.random_campaign(
                6, seed=7, record_sink=sink)
        assert streamed.records == []
        loaded = load_summary_jsonl(path)
        assert strip_wall(loaded.records) == strip_wall(reference.records)
        assert loaded.same_aggregates(reference)
        bounded = load_summary_jsonl(path, keep_records=False)
        assert bounded.records == []
        assert bounded.same_aggregates(reference)

    def test_closed_sink_rejects_records(self, tmp_path):
        sink = JsonlRecordSink(tmp_path / "closed.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.add(self.synthetic_record())


class TestIncrementalSummary:
    def records(self):
        return [ExperimentRecord(
                    scenario=f"s{i % 2}", injection_tick=10 * i,
                    variable="brake" if i % 2 else "throttle",
                    value=float(i), duration_ticks=4, seed=0,
                    hazard=Hazard.COLLISION if i == 3 else Hazard.NONE,
                    landed=bool(i % 2), pre_delta_long=5.0,
                    pre_delta_lat=2.0, min_delta_long=float(4 - i),
                    min_delta_lat=1.0, sim_seconds=8.0, wall_seconds=0.5)
                for i in range(5)]

    def test_add_matches_construction(self):
        records = self.records()
        constructed = CampaignSummary(records=records)
        incremental = CampaignSummary()
        for record in records:
            incremental.add(record)
        assert incremental.same_aggregates(constructed)
        assert incremental.records == constructed.records == records

    def test_unretained_summary_same_aggregates(self):
        records = self.records()
        retained = CampaignSummary(records=records)
        bounded = CampaignSummary(records=records, keep_records=False)
        assert bounded.records == []
        assert bounded.same_aggregates(retained)
        assert bounded.total == 5
        assert bounded.hazards == 1
        assert bounded.hazard_breakdown()["collision"] == 1
        assert bounded.hazardous_scenes() == {("s1", 30)}


class TestCheckpointStoreDisk:
    def test_save_load_round_trip(self, tmp_path, serial_campaign):
        store = serial_campaign.checkpoints
        directory = store.save(tmp_path / "ckpt")
        loaded = CheckpointStore.load(directory)
        assert loaded is not None
        assert loaded.scenarios() == store.scenarios()
        assert CheckpointStore.saved_scenarios(directory) == \
            set(store.scenarios())
        for name in store.scenarios():
            assert loaded.ticks(name) == store.ticks(name)
        scenario = small_scenarios()[0]
        tick = serial_campaign.injection_ticks(scenario)[2]
        direct = store.nearest(scenario.name, tick)
        restored = loaded.nearest(scenario.name, tick)
        assert pickle.dumps(restored) == pickle.dumps(direct)

    def test_load_scenario_pulls_single_ladder(self, tmp_path,
                                               serial_campaign):
        directory = serial_campaign.checkpoints.save(tmp_path / "ckpt")
        name = small_scenarios()[1].name
        partial_store = CheckpointStore()
        assert partial_store.load_scenario(directory, name)
        assert partial_store.scenarios() == [name]
        assert partial_store.ticks(name) == \
            serial_campaign.checkpoints.ticks(name)
        assert not partial_store.load_scenario(directory, "no_such")

    def test_unreadable_store_is_none(self, tmp_path):
        assert CheckpointStore.load(tmp_path / "missing") is None
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "index.json").write_text("not json")
        assert CheckpointStore.load(bad) is None
        assert CheckpointStore.saved_scenarios(bad) == set()

    def test_resume_from_loaded_store_matches(self, tmp_path,
                                              serial_campaign):
        directory = serial_campaign.checkpoints.save(tmp_path / "ckpt")
        scenarios = small_scenarios()
        scenario = scenarios[0]
        tick = serial_campaign.injection_ticks(scenario)[3]
        jobs = [(scenario.name, FaultSpec("throttle", 1.0, tick, 4))]
        reference = run_experiments(
            scenarios, serial_campaign.config, jobs,
            checkpoints=serial_campaign.checkpoints)
        via_path = run_experiments(
            scenarios, serial_campaign.config, jobs,
            checkpoints=directory)
        assert strip_wall(via_path) == strip_wall(reference)


class TestWarmStartCheckpoints:
    def test_warm_start_reuses_persisted_ladders(self, tmp_path,
                                                 monkeypatch):
        cold = make_campaign(cache_dir=tmp_path)
        cold_result = cold.bayesian_campaign(top_k=4)
        checkpoint_dirs = list(tmp_path.glob("checkpoints-*"))
        assert len(checkpoint_dirs) == 1

        warm = make_campaign(cache_dir=tmp_path)

        def no_resimulation(*args, **kwargs):
            raise AssertionError(
                "warm start must not re-simulate golden prefixes")

        import repro.core.campaign as campaign_module
        import repro.core.parallel as parallel_module
        monkeypatch.setattr(campaign_module, "run_scenario",
                            no_resimulation)
        monkeypatch.setattr(parallel_module, "run_scenario",
                            no_resimulation)
        warm_result = warm.bayesian_campaign(top_k=4)
        assert strip_wall(warm_result.summary.records) == \
            strip_wall(cold_result.summary.records)

    def test_stride_rotates_checkpoint_cache(self, tmp_path):
        dense = Campaign(small_scenarios(), CampaignConfig(),
                         cache_dir=tmp_path)
        sparse = Campaign(small_scenarios(),
                          CampaignConfig(checkpoint_stride=5),
                          cache_dir=tmp_path)
        assert dense._checkpoint_cache_dir() != \
            sparse._checkpoint_cache_dir()


def _cruise_build_30():
    from repro.sim.world import World
    return World.on_highway(ego_speed=30.0)


def _cruise_build_31():
    from repro.sim.world import World
    return World.on_highway(ego_speed=31.0)


class TestScenarioFingerprint:
    """Cache identity must rotate when a builder's behaviour changes."""

    def test_constant_edit_rotates_key(self):
        """Regression: literals live in co_consts, not co_code — a
        changed constant inside a build function must invalidate warm
        caches even though the bytecode is unchanged."""
        from functools import partial

        from repro.sim import Scenario
        a = Campaign._scenario_key(Scenario("s", _cruise_build_30))
        b = Campaign._scenario_key(Scenario("s", _cruise_build_31))
        assert _cruise_build_30.__code__.co_code == \
            _cruise_build_31.__code__.co_code
        assert a != b
        pa = Campaign._scenario_key(Scenario("s", partial(_cruise_build_30)))
        pb = Campaign._scenario_key(Scenario("s", partial(_cruise_build_31)))
        assert pa != pb

    def test_bound_arguments_rotate_key(self):
        from repro.sim import highway_cruise
        a = Campaign._scenario_key(highway_cruise(lead_gap=60.0))
        b = Campaign._scenario_key(highway_cruise(lead_gap=61.0))
        assert a != b


class TestSpawnStartMethod:
    """The no-fork path: scenarios and stores ship by pickle/disk."""

    def test_scenarios_pickle(self):
        for scenario in small_scenarios():
            clone = pickle.loads(pickle.dumps(scenario))
            assert clone.name == scenario.name
            world = clone.make_world()
            assert world.ego.state.v > 0.0

    def test_spawn_pool_matches_serial(self, serial_campaign):
        scenarios = small_scenarios()
        scenario = scenarios[0]
        ticks = serial_campaign.injection_ticks(scenario)
        jobs = [(scenario.name, FaultSpec("brake", 0.0, ticks[2], 4)),
                (scenario.name, FaultSpec("throttle", 1.0, ticks[-1], 4))]
        reference = run_experiments(
            scenarios, serial_campaign.config, jobs,
            checkpoints=serial_campaign.checkpoints)
        spawned = run_experiments(
            scenarios, serial_campaign.config, jobs, workers=2,
            checkpoints=serial_campaign.checkpoints, start_method="spawn")
        assert strip_wall(spawned) == strip_wall(reference)

    def test_spawn_golden_collection_matches_serial(self, serial_campaign):
        scenarios = small_scenarios()[:2]
        capture = {s.name: serial_campaign._capture_ticks(s)
                   for s in scenarios}
        sharded = collect_golden_runs(
            scenarios, serial_campaign.config, capture, workers=2,
            start_method="spawn")
        serial = serial_campaign.golden_runs()
        for name, run in sharded.items():
            reference = serial[name]
            assert run.min_delta_long == reference.min_delta_long
            reference_arrays = reference.trace.as_arrays()
            for column, array in run.trace.as_arrays().items():
                assert array.tolist() == \
                    reference_arrays[column].tolist(), column
            assert sorted(run.checkpoints) == \
                sorted(reference.checkpoints or {})
