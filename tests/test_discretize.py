"""Tests for the discretizer."""

import numpy as np
import pytest

from repro.bayesnet import Discretizer


class TestConstruction:
    def test_uniform_bins(self):
        d = Discretizer.uniform({"v": (0.0, 10.0)}, n_bins=5)
        assert d.n_bins("v") == 5
        assert np.allclose(d.edges["v"], [0, 2, 4, 6, 8, 10])

    def test_uniform_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Discretizer.uniform({"v": (1.0, 1.0)}, n_bins=3)

    def test_bad_bin_count(self):
        with pytest.raises(ValueError):
            Discretizer.uniform({"v": (0, 1)}, n_bins=0)

    def test_non_increasing_edges_rejected(self):
        with pytest.raises(ValueError):
            Discretizer({"v": np.array([0.0, 1.0, 1.0])})

    def test_from_data_quantiles(self):
        data = {"v": np.linspace(0, 100, 1001)}
        d = Discretizer.from_data(data, n_bins=4)
        assert d.edges["v"][1] == pytest.approx(25.0, abs=0.5)

    def test_from_data_constant_signal(self):
        d = Discretizer.from_data({"v": np.full(100, 3.0)}, n_bins=4)
        # Degenerate input still yields strictly increasing edges.
        assert (np.diff(d.edges["v"]) > 0).all()

    def test_cardinalities(self):
        d = Discretizer.uniform({"a": (0, 1), "b": (0, 2)}, n_bins=3)
        assert d.cardinalities() == {"a": 3, "b": 3}


class TestTransform:
    def test_value_binning(self):
        d = Discretizer.uniform({"v": (0.0, 10.0)}, n_bins=5)
        assert d.transform_value("v", 0.5) == 0
        assert d.transform_value("v", 9.9) == 4

    def test_out_of_range_clipped(self):
        d = Discretizer.uniform({"v": (0.0, 10.0)}, n_bins=5)
        assert d.transform_value("v", -100.0) == 0
        assert d.transform_value("v", 100.0) == 4

    def test_upper_edge_in_last_bin(self):
        d = Discretizer.uniform({"v": (0.0, 10.0)}, n_bins=5)
        assert d.transform_value("v", 10.0) == 4

    def test_vectorized_transform(self):
        d = Discretizer.uniform({"v": (0.0, 10.0)}, n_bins=5)
        binned = d.transform({"v": np.array([1.0, 5.0, 9.0])})
        assert binned["v"].tolist() == [0, 2, 4]

    def test_transform_skips_unknown_columns(self):
        d = Discretizer.uniform({"v": (0.0, 10.0)}, n_bins=5)
        binned = d.transform({"other": np.array([1.0])})
        assert "other" not in binned


class TestMidpoint:
    def test_midpoint_round_trip(self):
        d = Discretizer.uniform({"v": (0.0, 10.0)}, n_bins=5)
        for value in [0.3, 4.4, 9.7]:
            index = d.transform_value("v", value)
            mid = d.midpoint("v", index)
            assert abs(mid - value) <= 1.0  # within half a bin width

    def test_midpoint_out_of_range(self):
        d = Discretizer.uniform({"v": (0.0, 10.0)}, n_bins=5)
        with pytest.raises(IndexError):
            d.midpoint("v", 5)
