"""Property-based tests (hypothesis) for the simulator and safety model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (SafetyConfig, longitudinal_envelope,
                        safety_potential, steering_excursion,
                        stopping_displacement)
from repro.sim import (Obstacle, VehicleState, obb_overlap, rk4_step,
                       longitudinal_safe_distance)

speeds = st.floats(0.0, 45.0)
headings = st.floats(-0.3, 0.3)
steerings = st.floats(-0.55, 0.55)


class TestKinematicsProperties:
    @settings(max_examples=50, deadline=None)
    @given(speeds, steerings)
    def test_braking_reduces_speed(self, v, phi):
        state = VehicleState(v=v, phi=phi)
        after = rk4_step(state, -3.0, 0.0, 2.8, dt=0.1)
        assert after.v <= v + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(speeds, st.floats(-3.0, 3.0))
    def test_speed_never_negative(self, v, accel):
        state = VehicleState(v=v)
        for _ in range(20):
            state = rk4_step(state, accel, 0.0, 2.8, dt=0.25)
        assert state.v >= 0.0

    @settings(max_examples=50, deadline=None)
    @given(speeds, headings)
    def test_forward_motion_along_heading(self, v, theta):
        state = VehicleState(v=v, theta=theta)
        after = rk4_step(state, 0.0, 0.0, 2.8, dt=0.1)
        displacement = np.hypot(after.x, after.y)
        assert displacement <= v * 0.1 + 1e-6


class TestStoppingProperties:
    @settings(max_examples=40, deadline=None)
    @given(speeds)
    def test_straight_stop_matches_closed_form(self, v):
        stop = stopping_displacement(v, 0.0, 0.0)
        assert abs(stop.longitudinal - v ** 2 / 12.0) < max(
            0.02 * v ** 2 / 12.0, 0.3)

    @settings(max_examples=40, deadline=None)
    @given(speeds, speeds)
    def test_monotone_in_speed(self, v1, v2):
        lo, hi = sorted([v1, v2])
        d_lo = stopping_displacement(lo, 0.0, 0.0).longitudinal
        d_hi = stopping_displacement(hi, 0.0, 0.0).longitudinal
        assert d_hi >= d_lo - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(speeds, steerings)
    def test_lateral_antisymmetric_in_steering(self, v, phi):
        left = stopping_displacement(v, 0.0, phi).lateral
        right = stopping_displacement(v, 0.0, -phi).lateral
        assert abs(left + right) < 1e-6 + 0.02 * abs(left)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(5.0, 45.0), st.floats(0.005, 0.5))
    def test_steering_shortens_longitudinal_stop(self, v, phi):
        straight = stopping_displacement(v, 0.0, 0.0).longitudinal
        curved = stopping_displacement(v, 0.0, phi).longitudinal
        assert curved <= straight + 1e-6


class TestEnvelopeProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.0, 200.0), speeds)
    def test_envelope_at_least_gap(self, gap, lead_v):
        assert longitudinal_envelope(gap, lead_v) >= min(gap, 250.0) - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.0, 200.0), speeds, speeds)
    def test_envelope_monotone_in_lead_speed(self, gap, v1, v2):
        lo, hi = sorted([v1, v2])
        assert (longitudinal_envelope(gap, hi)
                >= longitudinal_envelope(gap, lo) - 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(speeds, st.floats(1.0, 200.0), speeds)
    def test_potential_monotone_in_gap(self, v, gap, lead_v):
        near = safety_potential(v, 0.0, 0.0, gap, lead_v, 3.0)
        far = safety_potential(v, 0.0, 0.0, gap + 10.0, lead_v, 3.0)
        assert far.longitudinal >= near.longitudinal - 1e-9


class TestExcursionProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(5.0, 40.0), st.floats(0.0, 0.55))
    def test_excursion_non_negative(self, v, phi):
        assert steering_excursion(v, phi, window=0.2) >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.floats(5.0, 40.0))
    def test_excursion_grows_with_angle(self, v):
        small = steering_excursion(v, 0.05, window=0.2)
        large = steering_excursion(v, 0.5, window=0.2)
        assert large >= small - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.05, 0.55))
    def test_excursion_grows_with_window(self, phi):
        short = steering_excursion(30.0, phi, window=0.1)
        long = steering_excursion(30.0, phi, window=0.6)
        assert long >= short - 1e-9


class TestGeometryProperties:
    boxes = st.tuples(st.floats(-30, 30), st.floats(-30, 30),
                      st.floats(0.2, np.pi))

    @settings(max_examples=50, deadline=None)
    @given(boxes, boxes)
    def test_overlap_symmetric(self, a, b):
        def corners(cx, cy, angle):
            base = np.array([[2.4, 0.95], [2.4, -0.95],
                             [-2.4, -0.95], [-2.4, 0.95]])
            c, s = np.cos(angle), np.sin(angle)
            return base @ np.array([[c, -s], [s, c]]).T + np.array([cx, cy])
        ca, cb = corners(*a), corners(*b)
        assert obb_overlap(ca, cb) == obb_overlap(cb, ca)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(-10, 240), st.floats(0.0, 11.0))
    def test_safe_distance_never_exceeds_sensor_range(self, x, y):
        obstacle = Obstacle(1, x=x, y=y)
        gap = longitudinal_safe_distance(0.0, 5.55, 4.8, 1.9, [obstacle])
        assert gap <= 250.0
