"""Tests for the world container, NPC scripting, and the scenario library."""

import numpy as np
import pytest

from repro.sim import (LaneChangeCommand, NPCVehicle, SpeedCommand, World,
                       default_scenarios, highway_cruise, lead_vehicle_cutin,
                       scenario_by_name, two_lead_reveal)


class TestNPC:
    def test_constant_speed_motion(self):
        npc = NPCVehicle(npc_id=1, x=0.0, y=5.0, v=10.0)
        npc.step(t=0.0, dt=1.0)
        assert npc.x == pytest.approx(10.0)

    def test_speed_command_with_accel_limit(self):
        npc = NPCVehicle(npc_id=1, x=0.0, y=5.0, v=10.0,
                         acceleration_limit=2.0)
        npc.speed_commands.append(SpeedCommand(t=0.0, target=20.0))
        npc.step(t=0.0, dt=1.0)
        assert npc.v == pytest.approx(12.0)

    def test_speed_command_not_yet_active(self):
        npc = NPCVehicle(npc_id=1, x=0.0, y=5.0, v=10.0)
        npc.speed_commands.append(SpeedCommand(t=5.0, target=0.0))
        npc.step(t=0.0, dt=1.0)
        assert npc.v == pytest.approx(10.0)

    def test_speed_never_negative(self):
        npc = NPCVehicle(npc_id=1, x=0.0, y=5.0, v=1.0,
                         acceleration_limit=10.0)
        npc.speed_commands.append(SpeedCommand(t=0.0, target=0.0))
        npc.step(t=0.0, dt=1.0)
        assert npc.v == 0.0

    def test_lane_change_completes(self):
        npc = NPCVehicle(npc_id=1, x=0.0, y=2.0, v=10.0)
        npc.lane_commands.append(LaneChangeCommand(t=0.0, target_y=6.0,
                                                   duration=2.0))
        t = 0.0
        for _ in range(25):
            npc.step(t, dt=0.1)
            t += 0.1
        assert npc.y == pytest.approx(6.0, abs=1e-6)
        assert not npc.lane_commands

    def test_lane_change_is_smooth(self):
        npc = NPCVehicle(npc_id=1, x=0.0, y=2.0, v=10.0)
        npc.lane_commands.append(LaneChangeCommand(t=0.0, target_y=6.0,
                                                   duration=2.0))
        ys = []
        t = 0.0
        for _ in range(20):
            npc.step(t, dt=0.1)
            ys.append(npc.y)
            t += 0.1
        deltas = np.diff([2.0] + ys)
        assert (deltas >= -1e-9).all()  # monotone toward target
        assert deltas[0] < deltas[len(deltas) // 2]  # eased start


class TestWorld:
    def test_on_highway_places_ego(self):
        world = World.on_highway(ego_speed=25.0, ego_lane=2)
        assert world.ego.state.v == 25.0
        assert world.ego.state.y == pytest.approx(
            world.road.lane_center(2))

    def test_step_advances_everything(self):
        world = World.on_highway(ego_speed=20.0)
        world.add_npc(NPCVehicle(npc_id=1, x=50.0,
                                 y=world.road.lane_center(1), v=10.0))
        world.step(throttle=0.0, brake=0.0, steering=0.0, dt=0.5)
        assert world.time == pytest.approx(0.5)
        assert world.ego.state.x > 0.0
        assert world.npcs[0].x > 50.0

    def test_longitudinal_d_safe(self):
        world = World.on_highway(ego_speed=20.0)
        world.add_npc(NPCVehicle(npc_id=1, x=60.0,
                                 y=world.road.lane_center(1), v=10.0))
        assert world.longitudinal_d_safe() == pytest.approx(60.0 - 4.8)

    def test_collision_flag(self):
        world = World.on_highway(ego_speed=20.0)
        world.add_npc(NPCVehicle(npc_id=1, x=2.0,
                                 y=world.road.lane_center(1), v=0.0))
        assert world.in_collision()

    def test_off_road_flag(self):
        world = World.on_highway(ego_speed=20.0, ego_lane=0)
        assert not world.off_road()
        # Teleport the ego to the shoulder.
        world.ego.state = world.ego.state.__class__(
            x=0.0, y=-1.0, v=20.0, theta=0.0, phi=0.0)
        assert world.off_road()


class TestScenarioLibrary:
    def test_default_scenarios_all_build(self):
        for scenario in default_scenarios():
            world = scenario.make_world()
            assert world.ego.state.v >= 0.0

    def test_scenario_names_unique(self):
        names = [s.name for s in default_scenarios()]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        assert scenario_by_name("highway_cruise").name == "highway_cruise"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            scenario_by_name("nope")

    def test_fresh_world_each_time(self):
        scenario = highway_cruise()
        first = scenario.make_world()
        second = scenario.make_world()
        first.step(1.0, 0.0, 0.0, dt=1.0)
        assert second.ego.state.x == 0.0

    def test_cutin_scenario_shrinks_gap(self):
        scenario = lead_vehicle_cutin(cutin_time=1.0)
        world = scenario.make_world()
        # Before the cut-in the NPC is in another lane: corridor is clear.
        initial = world.longitudinal_d_safe()
        for _ in range(80):
            world.step(0.0, 0.0, 0.0, dt=0.1)
        final = world.longitudinal_d_safe()
        assert initial > final  # cut-in brought a body into the corridor

    def test_two_lead_reveal_exposes_stopped_vehicle(self):
        scenario = two_lead_reveal(reveal_time=1.0, second_gap=150.0)
        world = scenario.make_world()
        gaps = []
        for _ in range(45):
            world.step(0.0, 0.0, 0.0, dt=0.1)
            gaps.append(world.longitudinal_d_safe())
        # After TV1 leaves the corridor (~t = 2.3 s) the nearest obstacle
        # is the stopped TV2, so the gap collapses at roughly ego speed.
        after_reveal = gaps[25]
        later = gaps[44]
        assert after_reveal < 150.0          # TV2 visible, not sensor range
        assert later < after_reveal - 30.0   # closing fast on a stopped car
