"""Failure-injection robustness tests: the stack must degrade gracefully.

These are not fault-model experiments; they verify the *infrastructure*
copes with pathological inputs (empty frames, NaN corruption, extreme
noise) without crashing — a precondition for trusting campaign results.
"""

import math

import numpy as np
import pytest

from repro.ads import (ADSConfig, ADSPipeline, Detection, EgoLocalizer,
                       GpsFix, ImuSample, MultiObjectTracker, Planner,
                       SensorSuite, SensorSuiteConfig, TrackedObject,
                       WorldModel, EgoEstimate)
from repro.core import FaultSpec, Hazard, run_scenario
from repro.sim import NPCVehicle, World, highway_cruise


class TestTrackerRobustness:
    def test_empty_frames_forever(self):
        tracker = MultiObjectTracker()
        for _ in range(50):
            assert tracker.update([], dt=0.1) == []

    def test_nan_detection_does_not_poison_all_tracks(self):
        tracker = MultiObjectTracker()
        for i in range(5):
            tracker.update([Detection(50.0 + i, 5.5, 10.0)], dt=0.1)
        # A NaN detection is gated out by the (NaN-safe) association
        # distance, so the healthy track survives.
        tracks = tracker.update([Detection(float("nan"), 5.5, 10.0)],
                                dt=0.1)
        healthy = [t for t in tracks if not math.isnan(t.x)]
        assert healthy

    def test_huge_coordinates(self):
        tracker = MultiObjectTracker()
        tracker.update([Detection(1e12, 5.5, 10.0)], dt=0.1)
        tracks = tracker.update([Detection(1e12, 5.5, 10.0)], dt=0.1)
        assert len(tracks) <= 1

    def test_many_simultaneous_objects(self):
        tracker = MultiObjectTracker()
        detections = [Detection(10.0 * i, 5.5, 10.0) for i in range(1, 40)]
        tracker.update(detections, dt=0.1)
        tracks = tracker.update(detections, dt=0.1)
        assert len(tracks) == 39


class TestLocalizerRobustness:
    def test_gps_outlier_absorbed(self):
        localizer = EgoLocalizer()
        rng = np.random.default_rng(0)
        x = 0.0
        for _ in range(50):
            x += 2.0
            localizer.update(GpsFix(x + rng.normal(0, 0.5), 0.0),
                             ImuSample(v=20.0), 0.0, dt=0.1)
        estimate = localizer.update(GpsFix(x + 500.0, 0.0),
                                    ImuSample(v=20.0), 0.0, dt=0.1)
        # One wild fix moves the estimate by far less than the outlier.
        assert abs(estimate.x - x) < 250.0


class TestPlannerRobustness:
    def model(self, tracks):
        return WorldModel(time=0.0,
                          ego=EgoEstimate(x=0.0, y=5.55, v=30.0, theta=0.0),
                          tracks=tracks)

    def test_overlapping_track_full_brake(self):
        planner = Planner()
        # A body half a metre ahead: gap clamps to epsilon, IDM must slam.
        track = TrackedObject(track_id=1, x=0.5, y=5.55, vx=0.0, vy=0.0)
        plan = planner.plan(self.model([track]), dt=0.1)
        assert plan.brake == 1.0
        assert math.isfinite(plan.steering)

    def test_track_behind_ignored(self):
        planner = Planner()
        track = TrackedObject(track_id=1, x=-10.0, y=5.55, vx=0.0, vy=0.0)
        plan = planner.plan(self.model([track]), dt=0.1)
        assert plan.gap == pytest.approx(250.0)

    def test_negative_ego_speed_estimate(self):
        planner = Planner()
        model = WorldModel(time=0.0,
                           ego=EgoEstimate(x=0.0, y=5.55, v=-3.0,
                                           theta=0.0),
                           tracks=[])
        plan = planner.plan(model, dt=0.1)
        assert math.isfinite(plan.throttle)
        assert plan.target_speed >= 0.0


class TestPipelineRobustness:
    def test_extreme_sensor_noise_run_completes(self):
        config = ADSConfig(sensors=SensorSuiteConfig(
            camera_position_noise=5.0, radar_position_noise=8.0,
            gps_noise=10.0, camera_dropout=0.5))
        world = World.on_highway(ego_speed=25.0)
        world.add_npc(NPCVehicle(npc_id=1, x=80.0,
                                 y=world.road.lane_center(1), v=20.0))
        pipeline = ADSPipeline(config, seed=0)
        for _ in range(200):
            command = pipeline.tick(world)
            world.step(command.throttle, command.brake, command.steering,
                       pipeline.config.control_period)
        assert math.isfinite(world.ego.state.v)

    def test_all_sensors_blind(self):
        config = ADSConfig(sensors=SensorSuiteConfig(camera_range=0.001,
                                                     radar_range=0.001))
        world = World.on_highway(ego_speed=25.0)
        world.add_npc(NPCVehicle(npc_id=1, x=200.0,
                                 y=world.road.lane_center(1), v=25.0))
        pipeline = ADSPipeline(config, seed=1)
        for _ in range(100):
            command = pipeline.tick(world)
            world.step(command.throttle, command.brake, command.steering,
                       pipeline.config.control_period)
        # Blind but alive: cruises on dead reckoning.
        assert math.isfinite(world.ego.state.v)

    def test_simultaneous_faults(self):
        faults = [FaultSpec("throttle", 1.0, 100, 4),
                  FaultSpec("steering", 0.2, 100, 4),
                  FaultSpec("imu_speed", 0.0, 100, 4)]
        result = run_scenario(highway_cruise(), seed=0, faults=faults,
                              horizon_after_fault=6.0)
        assert result.hazard in set(Hazard)

    def test_fault_beyond_run_end_is_harmless(self):
        fault = FaultSpec("brake", 1.0, start_tick=10_000,
                          duration_ticks=4)
        result = run_scenario(highway_cruise(), seed=0, faults=[fault],
                              duration=5.0, horizon_after_fault=None)
        assert not result.landed
