"""Unit coverage of the resilience layer (PR 6).

:mod:`repro.core.resilience` is tested end-to-end by the chaos suite
(``tests/test_chaos_equivalence.py``); this module pins the component
contracts each driver builds on — supervision policy validation, seeded
backoff, serial retry/quarantine, the supervised pool's failure modes,
failure-record persistence, the completion journal, and lease claims —
so a regression points at the broken part, not at a diverged campaign.
"""

import multiprocessing
import os
import signal
import time
from dataclasses import asdict, replace

import pytest

from repro.core import (Campaign, CampaignConfig, CampaignSummary,
                        FaultSpec, Hazard, ResilienceConfig,
                        run_experiments)
from repro.core.checkpoint import CheckpointStore
from repro.core.parallel import collect_golden_runs
from repro.core.persistence import (JsonlRecordSink, iter_records_jsonl,
                                    merge_record_shards, record_from_dict,
                                    record_to_dict)
from repro.core.pipeline import CampaignPipeline
from repro.core.resilience import (CampaignExecutionError, CampaignJournal,
                                   JobFailure, LeaseBoard,
                                   SupervisedExecutor, _backoff_delay,
                                   failure_record, run_supervised_serial)
from repro.core.results import ExperimentRecord
from repro.sim import Scenario, highway_cruise, lead_vehicle_cutin

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def small_scenarios():
    return [replace(highway_cruise(), duration=16.0),
            replace(lead_vehicle_cutin(), duration=14.0)]


def strip_wall(records):
    rows = []
    for record in records:
        row = asdict(record)
        row.pop("wall_seconds")
        rows.append(row)
    return rows


def ok_record(scenario="s", tick=10, variable="brake", value=0.0,
              **overrides):
    fields = dict(
        scenario=scenario, injection_tick=tick, variable=variable,
        value=value, duration_ticks=4, seed=0, hazard=Hazard.NONE,
        landed=True, pre_delta_long=4.0, pre_delta_lat=1.5,
        min_delta_long=2.0, min_delta_lat=0.75, sim_seconds=10.0,
        wall_seconds=0.25)
    fields.update(overrides)
    return ExperimentRecord(**fields)


# -- policy + backoff ----------------------------------------------------------

class TestResilienceConfig:
    def test_defaults_are_forgiving_not_strict(self):
        policy = ResilienceConfig()
        assert policy.max_attempts == 3
        assert policy.job_timeout is None
        assert not policy.strict
        assert policy.journal and not policy.resume
        assert not policy.lease_mode

    def test_rejects_nonpositive_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ResilienceConfig(max_attempts=0)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="job_timeout"):
            ResilienceConfig(job_timeout=0.0)


class TestBackoff:
    def test_deterministic_per_seed_job_attempt(self):
        policy = ResilienceConfig()
        first = _backoff_delay(policy, 7, ("s", 10), 1)
        assert first == _backoff_delay(policy, 7, ("s", 10), 1)
        assert first != _backoff_delay(policy, 7, ("s", 10), 2)
        assert first != _backoff_delay(policy, 8, ("s", 10), 1)

    def test_bounded_by_cap_with_jitter(self):
        policy = ResilienceConfig(backoff_base=0.1, backoff_cap=0.5)
        for attempt in range(1, 12):
            delay = _backoff_delay(policy, 0, "job", attempt)
            assert 0.0 <= delay <= 0.5 * 1.5

    def test_zero_base_disables_backoff(self):
        policy = ResilienceConfig(backoff_base=0.0)
        assert _backoff_delay(policy, 0, "job", 3) == 0.0


# -- serial supervision --------------------------------------------------------

class TestSerialSupervision:
    fast = ResilienceConfig(max_attempts=3, backoff_base=0.001)

    def test_success_passes_through(self):
        value, failure = run_supervised_serial(
            lambda: 42, self.fast, seed=0, key="k")
        assert (value, failure) == (42, None)

    def test_flaky_job_retries_to_success(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError("transient")
            return "done"

        value, failure = run_supervised_serial(flaky, self.fast, 0, "k")
        assert value == "done" and failure is None
        assert attempts["n"] == 3

    def test_persistent_failure_quarantines_with_attempts(self):
        def broken():
            raise ValueError("sim exploded")

        value, failure = run_supervised_serial(broken, self.fast, 0, "k")
        assert value is None
        assert failure == JobFailure(error="ValueError",
                                     message="sim exploded", attempts=3)

    def test_strict_reraises_the_original_exception(self):
        policy = ResilienceConfig(strict=True)

        def broken():
            raise ValueError("sim exploded")

        with pytest.raises(ValueError, match="sim exploded"):
            run_supervised_serial(broken, policy, 0, "k")

    def test_keyboard_interrupt_is_never_retried(self):
        calls = {"n": 0}

        def interrupted():
            calls["n"] += 1
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_supervised_serial(interrupted, self.fast, 0, "k")
        assert calls["n"] == 1


# -- failure records + persistence (S5) ---------------------------------------

class TestFailureRecords:
    fault = FaultSpec("brake", 0.0, 40, 4)
    failure = JobFailure(error="Timeout", message="exceeded 2s wall clock",
                         attempts=3)

    def test_failure_record_occupies_the_job_slot(self):
        record = failure_record("highway_cruise", self.fault,
                                CampaignConfig(seed=9), self.failure)
        assert record.failed
        assert (record.scenario, record.injection_tick, record.variable,
                record.value, record.duration_ticks, record.seed) == \
            ("highway_cruise", 40, "brake", 0.0, 4, 9)
        assert record.error == "Timeout: exceeded 2s wall clock"
        assert record.attempts == 3
        assert record.hazard is Hazard.NONE and not record.landed
        assert record.sim_seconds == 0.0

    def test_success_records_are_not_failed(self):
        assert not ok_record().failed
        assert ok_record().error is None and ok_record().attempts == 1

    def test_success_serialization_has_no_failure_keys(self):
        # Byte-compatibility with pre-resilience streams: a healthy
        # record's dict form is unchanged.
        row = record_to_dict(ok_record())
        assert "error" not in row and "attempts" not in row

    def test_failure_round_trips_through_dict(self):
        record = failure_record("s", self.fault, CampaignConfig(),
                                self.failure)
        row = record_to_dict(record)
        assert row["error"] == "Timeout: exceeded 2s wall clock"
        assert row["attempts"] == 3
        assert record_from_dict(row) == record

    def test_failures_flow_through_jsonl_sink_and_merge(self, tmp_path):
        records = [ok_record(tick=10),
                   failure_record("s", self.fault, CampaignConfig(),
                                  self.failure),
                   ok_record(tick=80)]
        path = tmp_path / "stream.jsonl"
        with JsonlRecordSink(path, style="random") as sink:
            for record in records:
                sink.add(record)
        assert list(iter_records_jsonl(path)) == records
        merged = merge_record_shards([path], keep_records=True)
        assert merged.total == 2
        assert merged.failures == 1
        assert merged.records == records

    def test_summary_counts_failures_apart_from_science(self):
        failed = failure_record("s", self.fault, CampaignConfig(),
                                self.failure)
        healthy = CampaignSummary([ok_record(tick=10), ok_record(tick=20)])
        disturbed = CampaignSummary([ok_record(tick=10),
                                     ok_record(tick=20), failed])
        assert disturbed.total == 2 and disturbed.failures == 1
        assert disturbed.hazards == healthy.hazards
        assert not disturbed.same_aggregates(healthy)   # failures differ
        assert "failures=1" in repr(disturbed)
        assert "failures" not in repr(healthy)
        merged = CampaignSummary.merge([disturbed, healthy])
        assert merged.total == 4 and merged.failures == 1


# -- the supervised pool -------------------------------------------------------

def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _crash(_payload):
    os.kill(os.getpid(), signal.SIGKILL)


def _crash_once(flag_path):
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return "recovered"


def _sleep_forever(_payload):
    time.sleep(60)


def _bad_init():
    raise RuntimeError("no simulator here")


@pytest.mark.skipif(not HAS_FORK, reason="fork start method required")
class TestSupervisedExecutor:
    def pool(self, workers=2, initializer=None, **policy_kw):
        policy_kw.setdefault("backoff_base", 0.001)
        return SupervisedExecutor(
            workers, multiprocessing.get_context("fork"),
            initializer=initializer, policy=ResilienceConfig(**policy_kw),
            seed=7)

    def test_results_arrive_tagged(self):
        with self.pool() as pool:
            for n in range(5):
                pool.submit(_square, n, tag=("sq", n))
            events = sorted(pool.drain())
        assert events == [(("sq", n), n * n, None) for n in range(5)]

    def test_crashed_worker_respawns_and_job_retries(self, tmp_path):
        with self.pool() as pool:
            pool.submit(_crash_once, str(tmp_path / "flag"), tag="job")
            events = list(pool.drain())
        assert events == [("job", "recovered", None)]

    def test_repeated_crashes_quarantine_with_attempt_count(self):
        with self.pool(max_attempts=2) as pool:
            pool.submit(_crash, None, tag="doomed")
            ((tag, value, failure),) = pool.drain()
        assert (tag, value) == ("doomed", None)
        assert failure.error == "WorkerCrash"
        assert failure.attempts == 2

    def test_raised_exceptions_quarantine_with_class_name(self):
        with self.pool(max_attempts=2) as pool:
            pool.submit(_boom, 3, tag="job")
            ((_, value, failure),) = pool.drain()
        assert value is None
        assert failure.error == "ValueError"
        assert "boom 3" in failure.message
        assert failure.attempts == 2

    def test_timeout_kills_the_worker_and_reports(self):
        with self.pool(max_attempts=1) as pool:
            start = time.monotonic()
            pool.submit(_sleep_forever, None, tag="slow", timeout=0.4)
            ((_, value, failure),) = pool.drain()
            elapsed = time.monotonic() - start
        assert value is None
        assert failure.error == "Timeout"
        assert "wall clock" in failure.message
        assert elapsed < 30.0            # did not wait out the sleep

    def test_strict_raises_instead_of_quarantining(self):
        with pytest.raises(CampaignExecutionError, match="strict"):
            with self.pool(max_attempts=1, strict=True) as pool:
                pool.submit(_boom, 1, tag="job")
                list(pool.drain())

    def test_failed_initializer_surfaces_not_hangs(self):
        with pytest.raises(CampaignExecutionError,
                           match="initialization"):
            with self.pool(initializer=_bad_init) as pool:
                pool.submit(_square, 2, tag="job")
                list(pool.drain())

    def test_mixed_outcomes_preserve_every_submission(self):
        with self.pool(max_attempts=2) as pool:
            for n in range(4):
                pool.submit(_square, n, tag=("ok", n))
            pool.submit(_boom, 9, tag=("bad", 9))
            events = list(pool.drain())
        assert pool.outstanding == 0
        by_tag = {tag: (value, failure) for tag, value, failure in events}
        assert len(by_tag) == 5
        assert all(by_tag[("ok", n)] == (n * n, None) for n in range(4))
        assert by_tag[("bad", 9)][1].error == "ValueError"


# -- completion journal --------------------------------------------------------

class TestCampaignJournal:
    fault = FaultSpec("brake", 0.0, 10, 4)

    def journal(self, tmp_path, key="work", resume=False):
        journal = CampaignJournal(tmp_path / "journal", campaign_key=key)
        journal.start(resume=resume)
        return journal

    def test_append_then_claim_round_trips_verbatim(self, tmp_path):
        first = self.journal(tmp_path)
        record = ok_record(tick=10, wall_seconds=1.25)
        first.append(record)
        first.close()
        assert first.appended == 1

        resumed = self.journal(tmp_path, resume=True)
        assert resumed.loaded_count == 1
        claimed = resumed.claim("s", self.fault, seed=0)
        assert claimed == record          # wall clock included: verbatim
        assert resumed.hits == 1
        assert resumed.claim("s", self.fault, seed=0) is None

    def test_duplicate_identities_are_a_multiset(self, tmp_path):
        # A seeded draw can repeat a fault; each journaled copy
        # satisfies exactly one occurrence, in append order.
        first = self.journal(tmp_path)
        first.append(ok_record(wall_seconds=1.0))
        first.append(ok_record(wall_seconds=2.0))
        first.close()

        resumed = self.journal(tmp_path, resume=True)
        assert resumed.claim("s", self.fault, 0).wall_seconds == 1.0
        assert resumed.claim("s", self.fault, 0).wall_seconds == 2.0
        assert resumed.claim("s", self.fault, 0) is None

    def test_fresh_start_clears_previous_segments(self, tmp_path):
        first = self.journal(tmp_path)
        first.append(ok_record())
        first.close()
        fresh = self.journal(tmp_path, resume=False)
        assert not list(fresh.directory.glob("seg-*.jsonl"))
        resumed = self.journal(tmp_path, resume=True)
        assert resumed.claim("s", self.fault, 0) is None

    def test_foreign_campaign_key_is_ignored_and_replaced(self, tmp_path):
        first = self.journal(tmp_path, key="alpha")
        first.append(ok_record())
        first.close()
        other = self.journal(tmp_path, key="beta", resume=True)
        assert other.loaded_count == 0
        assert other.claim("s", self.fault, 0) is None
        assert not list(other.directory.glob("seg-*.jsonl"))

    def test_failures_are_never_journaled(self, tmp_path):
        journal = self.journal(tmp_path)
        journal.append(failure_record(
            "s", self.fault, CampaignConfig(),
            JobFailure("Timeout", "exceeded", 3)))
        journal.close()
        assert journal.appended == 0
        assert not list(journal.directory.glob("seg-*.jsonl"))

    def test_wrong_seed_is_a_different_experiment(self, tmp_path):
        first = self.journal(tmp_path)
        first.append(ok_record(seed=0))
        first.close()
        resumed = self.journal(tmp_path, resume=True)
        assert resumed.claim("s", self.fault, seed=1) is None
        assert resumed.claim("s", self.fault, seed=0) is not None


# -- lease board ---------------------------------------------------------------

class TestLeaseBoard:
    def board(self, tmp_path, owner, ttl=30.0):
        return LeaseBoard(tmp_path / "board", style="random",
                          owner=owner, ttl=ttl)

    def test_claims_are_exclusive_between_owners(self, tmp_path):
        a = self.board(tmp_path, "host-a")
        b = self.board(tmp_path, "host-b")
        assert a.try_claim("scene")
        assert not b.try_claim("scene")
        assert a.try_claim("scene")       # re-claiming own lease is fine

    def test_release_hands_the_scenario_over(self, tmp_path):
        a = self.board(tmp_path, "host-a")
        b = self.board(tmp_path, "host-b")
        assert a.try_claim("scene")
        a.release("scene")
        assert b.try_claim("scene")

    def test_expired_lease_is_stolen(self, tmp_path):
        dead = self.board(tmp_path, "host-dead", ttl=0.2)
        live = self.board(tmp_path, "host-live")
        assert dead.try_claim("scene")
        assert not live.try_claim("scene")
        time.sleep(0.3)
        assert live.try_claim("scene")    # TTL elapsed, no heartbeat

    def test_heartbeat_keeps_the_lease_alive(self, tmp_path):
        a = self.board(tmp_path, "host-a", ttl=0.6)
        b = self.board(tmp_path, "host-b")
        assert a.try_claim("scene")
        for _ in range(4):
            time.sleep(0.15)
            a.heartbeat(min_interval=0.0)
        assert not b.try_claim("scene")   # refreshed well past first TTL

    def test_heartbeat_oserror_warns_and_retries_next_beat(self, tmp_path):
        """A shared-FS flake during TTL refresh degrades to a warning.

        The owning worker must not crash, the on-disk lease must stay
        intact (it just drifts toward expiry), and — because a failed
        beat leaves the rate-limit timer un-armed — the very next
        heartbeat call must retry instead of waiting out another
        interval.
        """
        from chaos_harness import failing_writes
        a = self.board(tmp_path, "host-a", ttl=0.9)   # interval ttl/3
        assert a.try_claim("scene")
        a.heartbeat(min_interval=0.0)       # a successful beat arms it
        before = a._read_lease(a._lease_path("scene"))
        time.sleep(0.35)                    # let the interval elapse
        with failing_writes("lease-") as state:
            with pytest.warns(RuntimeWarning, match="lease heartbeat"):
                a.heartbeat()               # flake: warn, never raise
        assert state["failed"] == 1
        after = a._read_lease(a._lease_path("scene"))
        assert after == before              # refresh never landed
        # Immediately after the flake: had the failed beat armed the
        # timer, this call would be rate-limited away; instead it
        # retries and the lease refreshes.
        a.heartbeat()
        refreshed = a._read_lease(a._lease_path("scene"))
        assert refreshed["expires"] > before["expires"]

    def test_publication_is_the_done_marker(self, tmp_path):
        a = self.board(tmp_path, "host-a")
        b = self.board(tmp_path, "host-b")
        assert a.try_claim("scene")
        a.publish("scene", [ok_record(scenario="scene")])
        a.release("scene")
        assert not b.try_claim("scene")   # done, not claimable
        assert b.is_done("scene")
        (path,) = b.record_paths(["scene", "other"])
        assert list(iter_records_jsonl(path)) == \
            [ok_record(scenario="scene")]
        assert a.published_names(["scene", "other"]) == ["scene"]


# -- campaign-level integration ------------------------------------------------

class TestJournalIntegration:
    def test_resume_replays_every_journaled_record(self, tmp_path):
        first = Campaign(small_scenarios(), CampaignConfig(),
                         cache_dir=tmp_path)
        reference = first.random_campaign(8, seed=11)
        assert first._last_journal.appended == 8
        assert first._last_journal.hits == 0

        resumed = Campaign(
            small_scenarios(),
            CampaignConfig(resilience=ResilienceConfig(resume=True)),
            cache_dir=tmp_path)
        again = resumed.random_campaign(8, seed=11)
        assert resumed._last_journal.hits == 8
        assert resumed._last_journal.appended == 0
        # Pure replay: bit-for-bit including the original wall clocks.
        assert [asdict(r) for r in again.records] == \
            [asdict(r) for r in reference.records]

    def test_distinct_work_never_shares_a_journal(self, tmp_path):
        first = Campaign(small_scenarios(), CampaignConfig(),
                         cache_dir=tmp_path)
        first.random_campaign(6, seed=11)
        resumed = Campaign(
            small_scenarios(),
            CampaignConfig(resilience=ResilienceConfig(resume=True)),
            cache_dir=tmp_path)
        resumed.random_campaign(6, seed=12)   # different draw
        assert resumed._last_journal.hits == 0
        assert resumed._last_journal.appended == 6

    def test_no_journal_opt_out_writes_nothing(self, tmp_path):
        campaign = Campaign(
            small_scenarios(),
            CampaignConfig(resilience=ResilienceConfig(journal=False)),
            cache_dir=tmp_path)
        campaign.random_campaign(4, seed=2)
        assert campaign._last_journal is None
        assert not list(tmp_path.glob("journal-*"))

    def test_barrier_driver_journals_identically(self, tmp_path):
        first = Campaign(small_scenarios(), CampaignConfig(),
                         cache_dir=tmp_path)
        reference = first.random_campaign(6, seed=11, pipeline=False)
        assert first._last_journal.appended == 6
        resumed = Campaign(
            small_scenarios(),
            CampaignConfig(resilience=ResilienceConfig(resume=True)),
            cache_dir=tmp_path)
        again = resumed.random_campaign(6, seed=11, pipeline=False)
        assert resumed._last_journal.hits == 6
        assert [asdict(r) for r in again.records] == \
            [asdict(r) for r in reference.records]


class _InterruptAfter:
    """Progress hook raising KeyboardInterrupt after N validations."""

    def __init__(self, after: int):
        self.after = after
        self.seen = 0

    def __call__(self, event):
        if event.stage != "validated":
            return
        self.seen += 1
        if self.seen >= self.after:
            raise KeyboardInterrupt


class TestKeyboardInterrupt:
    """S2: ^C mid-pooled-campaign leaves a consistent journal behind."""

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method required")
    @pytest.mark.parametrize("pipeline", [True, False],
                             ids=["pipeline", "barrier"])
    def test_interrupt_keeps_prefix_and_resume_completes(self, tmp_path,
                                                         pipeline):
        oracle = Campaign(small_scenarios(), CampaignConfig())
        reference = oracle.random_campaign(8, seed=11, pipeline=pipeline)

        interrupted = Campaign(small_scenarios(), CampaignConfig(),
                               cache_dir=tmp_path)
        with pytest.raises(KeyboardInterrupt):
            interrupted.random_campaign(
                8, seed=11, workers=2, pipeline=pipeline,
                on_progress=_InterruptAfter(3))

        resumed = Campaign(
            small_scenarios(),
            CampaignConfig(resilience=ResilienceConfig(resume=True)),
            cache_dir=tmp_path)
        summary = resumed.random_campaign(8, seed=11, pipeline=pipeline)
        journal = resumed._last_journal
        assert journal.hits >= 3                  # the flushed prefix
        assert journal.hits + journal.appended == 8
        assert strip_wall(summary.records) == \
            strip_wall(reference.records)


class TestSpawnFallbackWarning:
    """S3: the serial fallback names the argument that cannot pickle."""

    def closure_scenarios(self):
        from repro.sim.world import World
        return [Scenario("closure_cruise",
                         lambda: World.on_highway(ego_speed=28.0),
                         duration=14.0),
                Scenario("closure_fast",
                         lambda: World.on_highway(ego_speed=31.0),
                         duration=14.0)]

    def test_barrier_driver_warns_naming_scenarios(self):
        scenarios = self.closure_scenarios()
        config = CampaignConfig()
        with pytest.warns(RuntimeWarning, match="scenarios"):
            collect_golden_runs(scenarios, config, workers=2,
                                start_method="spawn")
        campaign = Campaign(scenarios, config)
        tick = campaign.injection_ticks(scenarios[0])[1]
        jobs = [("closure_cruise", FaultSpec("brake", 0.0, tick, 4))]
        with pytest.warns(RuntimeWarning, match="scenarios"):
            run_experiments(scenarios, config, jobs, workers=2,
                            start_method="spawn")

    def test_pipeline_driver_warns_naming_scenarios(self):
        campaign = Campaign(self.closure_scenarios(), CampaignConfig())
        with pytest.warns(RuntimeWarning, match="scenarios"):
            outcome = CampaignPipeline(
                campaign, workers=2, start_method="spawn").run(
                campaign._random_plan(4, 5))
        reference = Campaign(self.closure_scenarios(), CampaignConfig()) \
            .random_campaign(4, seed=5, pipeline=False)
        assert strip_wall(outcome.summary.records) == \
            strip_wall(reference.records)


class TestLadderSpill:
    """S4: pipeline ladders live on the spool, not in driver memory."""

    def test_ladders_spill_to_checkpoint_cache(self, tmp_path):
        campaign = Campaign(small_scenarios(), CampaignConfig(),
                            cache_dir=tmp_path)
        campaign.exhaustive_campaign(tick_stride=40,
                                     variable_names=["brake"])
        # Driver-resident ladder memory is O(one scenario): after the
        # run every ladder has been evicted...
        assert campaign.checkpoints.scenarios() == []
        # ...and the spool holds all of them, reloadable.
        spool = campaign._ladder_spool_dir()
        names = {s.name for s in campaign.scenarios}
        assert CheckpointStore.saved_scenarios(spool) >= names
        store = CheckpointStore()
        for name in names:
            assert store.load_scenario(spool, name)

    def test_spill_without_cache_dir_uses_campaign_tempdir(self):
        campaign = Campaign(small_scenarios(), CampaignConfig())
        campaign.exhaustive_campaign(tick_stride=40,
                                     variable_names=["brake"])
        assert campaign.checkpoints.scenarios() == []
        spool = campaign._ladder_spool_dir()
        assert CheckpointStore.saved_scenarios(spool) >= \
            {s.name for s in campaign.scenarios}


class TestSerialQuarantine:
    """A deterministically-failing job quarantines in its slot (or
    raises in strict mode) — identically in serial and pooled runs."""

    def _flaky_execute(self, monkeypatch, bad_tick):
        import repro.core.parallel as parallel_mod
        real = parallel_mod.execute_experiment

        def flaky(scenario, config, fault, checkpoints=None):
            if fault.start_tick == bad_tick:
                raise RuntimeError("sim exploded")
            return real(scenario, config, fault, checkpoints)

        monkeypatch.setattr(parallel_mod, "execute_experiment", flaky)

    def test_failure_occupies_its_slot(self, monkeypatch):
        scenarios = small_scenarios()
        config = CampaignConfig(resilience=ResilienceConfig(
            max_attempts=2, backoff_base=0.001))
        campaign = Campaign(scenarios, config)
        ticks = campaign.injection_ticks(scenarios[0])
        jobs = [(scenarios[0].name, FaultSpec("brake", 0.0, ticks[1], 4)),
                (scenarios[0].name, FaultSpec("brake", 0.0, ticks[2], 4)),
                (scenarios[0].name, FaultSpec("brake", 0.0, ticks[3], 4))]
        reference = run_experiments(scenarios, config, jobs)

        self._flaky_execute(monkeypatch, ticks[2])
        records = run_experiments(scenarios, config, jobs)
        assert [r.failed for r in records] == [False, True, False]
        failed = records[1]
        assert failed.error == "RuntimeError: sim exploded"
        assert failed.attempts == 2
        assert strip_wall([records[0], records[2]]) == \
            strip_wall([reference[0], reference[2]])

    def test_strict_mode_raises_the_original_error(self, monkeypatch):
        scenarios = small_scenarios()
        config = CampaignConfig(resilience=ResilienceConfig(strict=True))
        campaign = Campaign(scenarios, config)
        tick = campaign.injection_ticks(scenarios[0])[1]
        self._flaky_execute(monkeypatch, tick)
        with pytest.raises(RuntimeError, match="sim exploded"):
            run_experiments(scenarios, config,
                            [(scenarios[0].name,
                              FaultSpec("brake", 0.0, tick, 4))])
