"""Unit tests for the campaign service: durable jobs, queues,
admission control, watchdog, and the HTTP surface.

Campaign-executing paths run through :class:`ServiceThread` (the
in-process harness) with ``max_running=0`` wherever a job should stay
pinned in the queue — the full execute/kill/resume paths live in
``tests/test_chaos_equivalence.py::TestServiceChaos``.
"""

import contextlib
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from chaos_harness import failing_writes
from repro.service import (CampaignService, ServiceClient, ServiceConfig,
                           ServiceThread, TenantQueues, Watchdog)
from repro.service.client import ServiceError
from repro.service.jobs import (CANCELLED, COMPLETED, DRAINING, FAILED,
                                QUEUED, RUNNING, JobJournal, JobSpec,
                                JobStore, SpecError)
from repro.service.queue import AdmissionControl


def spec_dict(n=3, tenant="default", **extra):
    return {"style": "random", "params": {"n": n, "seed": 1},
            "tenant": tenant, **extra}


class TestJobSpec:
    def test_round_trips_through_dict(self):
        spec = JobSpec.from_dict(
            {"style": "bayesian", "params": {"top_k": 5},
             "scenarios": [{"name": "highway_cruise", "duration": 20.0}],
             "workers": 2, "lease": True, "tenant": "team-a"})
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_digest_is_canonical(self):
        a = JobSpec.from_dict({"style": "random", "params": {"n": 5}})
        b = JobSpec.from_dict({"params": {"n": 5}, "style": "random"})
        c = JobSpec.from_dict({"style": "random", "params": {"n": 6}})
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {"style": "unknown"},
        {"style": "random", "params": []},
        {"style": "random", "scenarios": []},
        {"style": "random", "scenarios": [{"duration": 5.0}]},
    ])
    def test_rejects_malformed_payloads(self, payload):
        with pytest.raises(SpecError):
            JobSpec.from_dict(payload)

    @pytest.mark.parametrize("field,value", [
        ("interface_kinds", ["freeze", "explode"]),
        ("interface_probe", ["teleport"]),
        ("interface_channels", ["planning", "warp_drive"]),
    ])
    def test_unknown_interface_entry_names_offending_field(self, field,
                                                           value):
        with pytest.raises(SpecError, match=rf"spec\.params\.{field}"):
            JobSpec.from_dict(spec_dict(**{"params": {"n": 3, field: value}}))

    def test_interface_params_must_be_lists(self):
        with pytest.raises(SpecError, match=r"spec\.params\.interface_kinds"):
            JobSpec.from_dict(
                spec_dict(**{"params": {"n": 3, "interface_kinds": "freeze"}}))


class TestJobJournal:
    def test_append_replay_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.append({"type": "submitted", "job": "job-1"})
        journal.append({"type": "state", "job": "job-1", "state": QUEUED})
        events = JobJournal(tmp_path / "j").replay()
        assert [e["type"] for e in events] == ["submitted", "state"]
        assert [e["seq"] for e in events] == [1, 2]

    def test_corrupt_event_is_skipped_not_fatal(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.append({"type": "submitted", "job": "job-1"})
        journal.append({"type": "state", "job": "job-1", "state": QUEUED})
        (tmp_path / "j" / "evt-00000002.json").write_bytes(b"\x00torn{")
        events = JobJournal(tmp_path / "j").replay()
        assert [e["type"] for e in events] == ["submitted"]

    def test_sequence_continues_after_reopen(self, tmp_path):
        JobJournal(tmp_path / "j").append({"type": "submitted"})
        reopened = JobJournal(tmp_path / "j")
        reopened.append({"type": "state"})
        names = sorted(p.name for p in (tmp_path / "j").glob("evt-*"))
        assert names == ["evt-00000001.json", "evt-00000002.json"]


class TestJobStore:
    def test_submit_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        spec = JobSpec.from_dict(spec_dict())
        job, created = store.submit(spec)
        again, created_again = store.submit(spec)
        assert created and not created_again
        assert again is job

    def test_explicit_key_beats_digest(self, tmp_path):
        store = JobStore(tmp_path)
        a, _ = store.submit(JobSpec.from_dict(spec_dict(n=1)), "same-key")
        b, created = store.submit(JobSpec.from_dict(spec_dict(n=2)),
                                  "same-key")
        assert b is a and not created

    def test_illegal_transition_raises(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(JobSpec.from_dict(spec_dict()))
        with pytest.raises(ValueError, match="illegal transition"):
            store.transition(job, COMPLETED)     # submitted -> completed

    def test_recovery_requeues_running_jobs_as_resumable(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(JobSpec.from_dict(spec_dict()))
        store.transition(job, QUEUED)
        store.transition(job, RUNNING, pid=12345, attempts=1)
        # ... server dies here (nothing else is written) ...
        recovered = JobStore(tmp_path)
        requeued = recovered.recover()
        assert [j.id for j in requeued] == [job.id]
        back = recovered.jobs[job.id]
        assert back.state == QUEUED
        assert back.resume is True
        assert back.attempts == 1
        assert back.pid == 12345             # for the orphan-runner kill

    def test_recovery_preserves_terminal_states_and_idempotency(
            self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(JobSpec.from_dict(spec_dict()), "the-key")
        store.transition(job, QUEUED)
        store.transition(job, RUNNING, attempts=1)
        store.transition(job, COMPLETED, summary={"total": 3})
        recovered = JobStore(tmp_path)
        assert recovered.recover() == []
        back = recovered.get_by_key("the-key")
        assert back is not None
        assert back.state == COMPLETED
        assert back.summary == {"total": 3}
        # New submissions continue the id sequence, never reuse it.
        fresh, _ = recovered.submit(JobSpec.from_dict(spec_dict(n=9)))
        assert fresh.id != back.id

    def test_recovery_converges_after_crash_during_recovery(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(JobSpec.from_dict(spec_dict()))
        store.transition(job, QUEUED)
        store.transition(job, RUNNING, attempts=1)
        JobStore(tmp_path).recover()     # writes the requeue, "crashes"
        second = JobStore(tmp_path)
        second.recover()
        assert second.jobs[job.id].state == QUEUED
        assert second.jobs[job.id].resume is True

    def test_recovery_returns_already_queued_jobs(self, tmp_path):
        """Jobs whose last journaled state already is ``queued`` —
        normal queued submissions, and jobs a graceful drain settled
        as queued+resume — must come back from recover() so the server
        pushes them onto the scheduler queues (regression: they used
        to be stranded 'queued' forever after a restart)."""
        store = JobStore(tmp_path)
        waiting, _ = store.submit(JobSpec.from_dict(spec_dict(n=1)))
        store.transition(waiting, QUEUED)
        drained, _ = store.submit(JobSpec.from_dict(spec_dict(n=2)))
        store.transition(drained, QUEUED)
        store.transition(drained, RUNNING, attempts=1)
        store.transition(drained, DRAINING)
        store.transition(drained, QUEUED, resume=True)  # graceful drain
        recovered = JobStore(tmp_path)
        requeued = recovered.recover()
        assert sorted(j.id for j in requeued) == \
            sorted([waiting.id, drained.id])
        assert recovered.jobs[waiting.id].state == QUEUED
        assert recovered.jobs[drained.id].resume is True

    def test_draining_jobs_recover_as_resumable(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(JobSpec.from_dict(spec_dict()))
        store.transition(job, QUEUED)
        store.transition(job, RUNNING, attempts=1)
        store.transition(job, DRAINING)
        recovered = JobStore(tmp_path)
        recovered.recover()
        assert recovered.jobs[job.id].state == QUEUED
        assert recovered.jobs[job.id].resume is True

    def test_journal_write_fault_surfaces_not_corrupts(self, tmp_path):
        """ENOSPC while journaling a submission is a loud error; the
        events already on disk replay untouched."""
        store = JobStore(tmp_path)
        store.submit(JobSpec.from_dict(spec_dict(n=1)))
        with failing_writes("evt-"):
            with pytest.raises(OSError):
                store.submit(JobSpec.from_dict(spec_dict(n=2)))
        recovered = JobStore(tmp_path)
        recovered.recover()
        assert len(recovered.jobs) == 1


class TestTenantQueues:
    def test_fifo_within_tenant(self):
        queues = TenantQueues()
        for i in range(3):
            queues.push("a", f"job-{i}")
        assert [queues.pop() for _ in range(3)] == \
            ["job-0", "job-1", "job-2"]
        assert queues.pop() is None

    def test_round_robin_across_tenants(self):
        queues = TenantQueues()
        queues.push("a", "a1")
        queues.push("a", "a2")
        queues.push("b", "b1")
        queues.push("c", "c1")
        order = [queues.pop() for _ in range(4)]
        # One job per tenant per cycle: tenant a cannot starve b and c.
        assert order.index("b1") < order.index("a2")
        assert order.index("c1") < order.index("a2")
        assert sorted(order) == ["a1", "a2", "b1", "c1"]

    def test_remove_and_depth(self):
        queues = TenantQueues()
        queues.push("a", "a1")
        queues.push("b", "b1")
        assert queues.depth() == 2
        assert queues.remove("a", "a1") is True
        assert queues.remove("a", "a1") is False
        assert queues.depth("a") == 0
        assert queues.depth() == 1


class TestAdmissionControl:
    def test_queue_depth_cap(self, tmp_path):
        control = AdmissionControl(tmp_path, max_queue_depth=2,
                                   max_tenant_depth=2,
                                   min_disk_free_bytes=0)
        queues = TenantQueues()
        assert control.admit(queues, "a").accepted
        queues.push("a", "a1")
        queues.push("b", "b1")
        decision = control.admit(queues, "c")
        assert not decision.accepted
        assert "queue full" in decision.reason
        assert decision.retry_after > 0

    def test_tenant_cap_spares_other_tenants(self, tmp_path):
        control = AdmissionControl(tmp_path, max_queue_depth=100,
                                   max_tenant_depth=1,
                                   min_disk_free_bytes=0)
        queues = TenantQueues()
        queues.push("a", "a1")
        assert not control.admit(queues, "a").accepted
        assert control.admit(queues, "b").accepted

    def test_disk_headroom_floor_degrades(self, tmp_path):
        starved = AdmissionControl(tmp_path,
                                   min_disk_free_bytes=1 << 62)
        assert starved.degraded()
        decision = starved.admit(TenantQueues(), "a")
        assert not decision.accepted
        assert "degraded" in decision.reason


class TestWatchdog:
    def test_stall_detection_and_forget(self):
        watchdog = Watchdog(stall_timeout=0.05)
        watchdog.beat("job-1")
        watchdog.beat("job-2")
        assert watchdog.stalled() == []
        time.sleep(0.08)
        assert sorted(watchdog.stalled()) == ["job-1", "job-2"]
        watchdog.beat("job-1")
        watchdog.forget("job-2")
        assert watchdog.stalled() == []


class TestEventLog:
    def test_cap_drops_oldest_and_keeps_absolute_cursors(self):
        from repro.service.server import _EventLog
        log = _EventLog(cap=4)
        for i in range(10):
            log.append({"i": i})
        assert log.base == 6 and log.end == 10
        assert [e["i"] for e in log.since(0)] == [6, 7, 8, 9]
        assert [e["i"] for e in log.since(8)] == [8, 9]
        assert log.since(10) == []


@pytest.mark.skipif(not os.path.exists("/proc/self/cmdline"),
                    reason="orphan matching reads /proc")
class TestOrphanRunnerKill:
    def test_only_this_jobs_runner_is_killed(self, tmp_path):
        """A recycled pid — even one running *some* runner, but for a
        different job/spec — must be spared; only a process whose argv
        carries this job's spec path is SIGKILLed."""
        service = CampaignService(
            ServiceConfig(cache_dir=tmp_path / "cache"))
        job, _ = service.store.submit(JobSpec.from_dict(spec_dict()))
        sleeper = [sys.executable, "-c", "import time; time.sleep(60)",
                   "repro.service.runner"]
        impostor = subprocess.Popen(sleeper + ["/elsewhere/spec.json"])
        genuine = subprocess.Popen(
            sleeper + [str(service.store.spec_path(job))])
        try:
            job.pid = impostor.pid
            service._kill_orphan_runner(job)
            time.sleep(0.2)
            assert impostor.poll() is None    # wrong spec path: spared
            job.pid = genuine.pid
            service._kill_orphan_runner(job)
            genuine.wait(timeout=10)
            assert genuine.returncode == -signal.SIGKILL
        finally:
            for proc in (impostor, genuine):
                with contextlib.suppress(ProcessLookupError):
                    proc.kill()
                proc.wait(timeout=10)


@pytest.fixture
def idle_service(tmp_path):
    """A live service whose scheduler never launches (max_running=0):
    jobs stay queued, making queue/admission behaviour observable."""
    config = ServiceConfig(cache_dir=tmp_path / "cache", max_running=0,
                           max_queue_depth=3, max_tenant_depth=2)
    with ServiceThread(config) as thread:
        yield ServiceClient(port=thread.port), thread


class TestServiceHTTP:
    def test_probes(self, idle_service):
        client, _ = idle_service
        assert client.healthz() == {"status": "ok"}
        assert client.readyz() == {"status": "ready"}

    def test_submit_and_get(self, idle_service):
        client, _ = idle_service
        job = client.submit(spec_dict())
        assert job["state"] == "queued"
        assert client.job(job["id"])["id"] == job["id"]
        assert [j["id"] for j in client.jobs()] == [job["id"]]

    def test_unknown_job_is_404(self, idle_service):
        client, _ = idle_service
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_malformed_spec_is_400(self, idle_service):
        client, _ = idle_service
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"style": "nope"})
        assert excinfo.value.status == 400

    def test_unknown_interface_kind_is_400_naming_field(self, idle_service):
        client, _ = idle_service
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec_dict(
                **{"params": {"n": 3, "interface_kinds": ["freeze",
                                                          "explode"]}}))
        assert excinfo.value.status == 400
        assert "spec.params.interface_kinds" in str(excinfo.value)
        assert "explode" in str(excinfo.value)

    def test_unknown_interface_channel_is_400_naming_field(
            self, idle_service):
        client, _ = idle_service
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec_dict(
                **{"params": {"n": 3,
                              "interface_channels": ["warp_drive"]}}))
        assert excinfo.value.status == 400
        assert "spec.params.interface_channels" in str(excinfo.value)

    def test_idempotency_key_header(self, idle_service):
        client, _ = idle_service
        a = client.submit(spec_dict(n=1), idempotency_key="key-1")
        b = client.submit(spec_dict(n=1), idempotency_key="key-1")
        assert b["id"] == a["id"]
        assert len(client.jobs()) == 1

    def test_idempotency_key_conflict_is_409(self, idle_service):
        """Reusing a key with a *different* spec must not silently
        discard the new spec — it is a loud conflict."""
        client, _ = idle_service
        a = client.submit(spec_dict(n=1), idempotency_key="key-1")
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec_dict(n=2), idempotency_key="key-1")
        assert excinfo.value.status == 409
        assert a["id"] in excinfo.value.payload["error"]
        assert len(client.jobs()) == 1

    def test_queue_backpressure_is_429_with_retry_after(self,
                                                        idle_service):
        client, _ = idle_service
        for i in range(2):
            client.submit(spec_dict(n=i + 10, tenant=f"t{i}"))
        # Global cap is 3; tenant cap is 2 — tenant t0 trips its cap.
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec_dict(n=50, tenant="t0"))
            client.submit(spec_dict(n=51, tenant="t0"))
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None

    def test_cancel_queued_job(self, idle_service):
        client, _ = idle_service
        job = client.submit(spec_dict())
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        assert client.stats()["queued"] == 0

    def test_stats_shape(self, idle_service):
        client, _ = idle_service
        stats = client.stats()
        assert stats["accepting"] is True
        assert stats["running"] == []
        assert stats["degraded"] is False
        assert stats["disk_free"] > 0

    def test_degraded_mode_rejects_but_stays_healthy(self, tmp_path):
        config = ServiceConfig(cache_dir=tmp_path / "cache",
                               max_running=0,
                               min_disk_free_bytes=1 << 62)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.port)
            assert client.healthz() == {"status": "ok"}
            with pytest.raises(ServiceError) as ready:
                client.readyz()
            assert ready.value.status == 503
            assert ready.value.payload["status"] == "degraded"
            with pytest.raises(ServiceError) as submit:
                client.submit(spec_dict())
            assert submit.value.status == 429
            assert "degraded" in submit.value.payload["error"]

    def test_drain_rejects_new_work_and_journals_queue(self, tmp_path):
        config = ServiceConfig(cache_dir=tmp_path / "cache",
                               max_running=0)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.port)
            job = client.submit(spec_dict())
            thread.drain()
        # The drained server is gone; its durable state must bring the
        # queued job back on the next start — recover() has to *return*
        # it, or the next scheduler never hears about it.
        store = JobStore(tmp_path / "cache" / "service")
        requeued = store.recover()
        assert [j.id for j in requeued] == [job["id"]]
        assert store.jobs[job["id"]].state == QUEUED

    def test_drained_job_completes_after_restart(self, tmp_path):
        """End-to-end drain → restart: the job a drain left queued must
        actually launch and finish on the next server, not just be
        recovered as 'queued'."""
        cache = tmp_path / "cache"
        spec = {"style": "random", "params": {"n": 2, "seed": 1},
                "scenarios": [{"name": "highway_cruise",
                               "duration": 14.0}]}
        with ServiceThread(ServiceConfig(cache_dir=cache,
                                         max_running=0)) as thread:
            job = ServiceClient(port=thread.port).submit(spec)
            assert job["state"] == "queued"
            thread.drain()
        with ServiceThread(ServiceConfig(cache_dir=cache)) as thread:
            final = ServiceClient(port=thread.port).wait(job["id"],
                                                         timeout=240)
            assert final["state"] == "completed"
            assert final["summary"]["total"] == 2

    def test_restarted_service_remembers_idempotency_keys(self, tmp_path):
        cache = tmp_path / "cache"
        config = ServiceConfig(cache_dir=cache, max_running=0)
        with ServiceThread(config) as thread:
            first = ServiceClient(port=thread.port).submit(
                spec_dict(), idempotency_key="sticky")
        with ServiceThread(config) as thread:
            again = ServiceClient(port=thread.port).submit(
                spec_dict(), idempotency_key="sticky")
            assert again["id"] == first["id"]
            assert len(ServiceClient(port=thread.port).jobs()) == 1

    def test_finished_job_event_logs_expire(self, tmp_path):
        """Event histories are bounded in an always-on process: once
        enough newer jobs finish, the oldest finished job's log is
        dropped — its stream ends cleanly instead of replaying."""
        config = ServiceConfig(cache_dir=tmp_path / "cache",
                               max_running=0, max_queue_depth=64,
                               max_tenant_depth=64,
                               max_finished_event_logs=2)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.port)
            ids = []
            for i in range(4):
                job = client.submit(spec_dict(n=100 + i))
                client.cancel(job["id"])
                ids.append(job["id"])
            assert thread.service is not None
            assert len(thread.service._events) <= 2
            assert list(client.events(ids[0])) == []
            states = [e["state"] for e in client.events(ids[-1])
                      if e["type"] == "state"]
            assert states == ["queued", "cancelled"]

    def test_events_endpoint_replays_state_history(self, idle_service):
        client, _ = idle_service
        job = client.submit(spec_dict())
        client.cancel(job["id"])
        events = list(client.events(job["id"]))
        states = [e["state"] for e in events if e["type"] == "state"]
        assert states == ["queued", "cancelled"]

    def test_records_of_unfinished_job_is_404(self, idle_service):
        client, _ = idle_service
        job = client.submit(spec_dict())
        with pytest.raises(ServiceError) as excinfo:
            client.records(job["id"])
        assert excinfo.value.status == 404


class TestServiceExecution:
    """One real (tiny) campaign through the in-process service."""

    def test_job_executes_and_reports_summary(self, tmp_path):
        config = ServiceConfig(cache_dir=tmp_path / "cache")
        spec = {"style": "random", "params": {"n": 2, "seed": 1},
                "scenarios": [{"name": "highway_cruise",
                               "duration": 14.0}]}
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.port)
            job = client.submit(spec)
            final = client.wait(job["id"], timeout=240)
            assert final["state"] == "completed"
            assert final["summary"]["total"] == 2
            assert final["summary"]["journal"]["appended"] == 2
            raw = client.records(job["id"])
            lines = [json.loads(line)
                     for line in raw.decode().strip().splitlines()]
            assert len(lines) == 3           # _meta header + 2 records
            assert lines[0]["_meta"]["style"] == "random"
            events = list(client.events(job["id"]))
            stages = {e["stage"] for e in events
                      if e["type"] == "progress"}
            assert "validated" in stages

    def test_spawn_failure_fails_job_not_scheduler(self, tmp_path):
        """An OSError from create_subprocess_exec consumes launch
        attempts and fails the job — and the scheduler survives it to
        run the next job end-to-end."""
        import asyncio
        real = asyncio.create_subprocess_exec

        async def refuse(*args, **kwargs):
            raise OSError("chaos: exec refused")

        config = ServiceConfig(cache_dir=tmp_path / "cache",
                               max_attempts=2)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.port)
            asyncio.create_subprocess_exec = refuse
            try:
                job = client.submit(spec_dict())
                final = client.wait(job["id"], timeout=60)
            finally:
                asyncio.create_subprocess_exec = real
            assert final["state"] == "failed"
            assert "spawn" in final["error"]
            assert final["attempts"] == 2     # both tries consumed
            ok = client.submit(
                {"style": "random", "params": {"n": 1, "seed": 1},
                 "scenarios": [{"name": "highway_cruise",
                                "duration": 14.0}]})
            assert client.wait(ok["id"], timeout=240)["state"] == \
                "completed"

    def test_cancel_during_launch_kills_runner_not_scheduler(
            self, tmp_path):
        """A cancel racing create_subprocess_exec used to blow up the
        scheduler task with an illegal queued→running transition (and
        leave the fresh runner unsupervised); now the runner is killed
        and scheduling continues."""
        import asyncio
        real = asyncio.create_subprocess_exec
        entered = threading.Event()
        release = threading.Event()

        async def slow_spawn(*args, **kwargs):
            if not entered.is_set():
                entered.set()
                while not release.is_set():
                    await asyncio.sleep(0.01)
            return await real(*args, **kwargs)

        config = ServiceConfig(cache_dir=tmp_path / "cache")
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.port)
            asyncio.create_subprocess_exec = slow_spawn
            try:
                job = client.submit(spec_dict())
                assert entered.wait(timeout=10)
                cancelled = client.cancel(job["id"])  # lands mid-spawn
                assert cancelled["state"] == "cancelled"
                release.set()
            finally:
                asyncio.create_subprocess_exec = real
            ok = client.submit(
                {"style": "random", "params": {"n": 1, "seed": 1},
                 "scenarios": [{"name": "highway_cruise",
                                "duration": 14.0}]})
            assert client.wait(ok["id"], timeout=240)["state"] == \
                "completed"
            assert client.job(job["id"])["state"] == "cancelled"

    def test_stalled_runner_is_killed_and_failed(self, tmp_path):
        """A runner that wedges (no events, no exit) trips the
        watchdog; with retries exhausted the job fails with a clear
        error."""
        import os
        from repro.service.runner import (ALIVE_INTERVAL_ENV,
                                          STALL_AFTER_ENV)
        os.environ[STALL_AFTER_ENV] = "0"
        os.environ[ALIVE_INTERVAL_ENV] = "0.05"
        try:
            config = ServiceConfig(cache_dir=tmp_path / "cache",
                                   stall_timeout=1.0, max_attempts=1)
            spec = {"style": "random", "params": {"n": 2, "seed": 1},
                    "scenarios": [{"name": "highway_cruise",
                                   "duration": 14.0}]}
            with ServiceThread(config) as thread:
                client = ServiceClient(port=thread.port)
                job = client.submit(spec)
                final = client.wait(job["id"], timeout=120)
                assert final["state"] == "failed"
                assert "died" in final["error"]
        finally:
            os.environ.pop(STALL_AFTER_ENV, None)
            os.environ.pop(ALIVE_INTERVAL_ENV, None)
