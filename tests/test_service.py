"""Unit tests for the campaign service: durable jobs, queues,
admission control, watchdog, and the HTTP surface.

Campaign-executing paths run through :class:`ServiceThread` (the
in-process harness) with ``max_running=0`` wherever a job should stay
pinned in the queue — the full execute/kill/resume paths live in
``tests/test_chaos_equivalence.py::TestServiceChaos``.
"""

import json
import time

import pytest

from chaos_harness import failing_writes
from repro.service import (ServiceClient, ServiceConfig, ServiceThread,
                           TenantQueues, Watchdog)
from repro.service.client import ServiceError
from repro.service.jobs import (CANCELLED, COMPLETED, DRAINING, FAILED,
                                QUEUED, RUNNING, JobJournal, JobSpec,
                                JobStore, SpecError)
from repro.service.queue import AdmissionControl


def spec_dict(n=3, tenant="default", **extra):
    return {"style": "random", "params": {"n": n, "seed": 1},
            "tenant": tenant, **extra}


class TestJobSpec:
    def test_round_trips_through_dict(self):
        spec = JobSpec.from_dict(
            {"style": "bayesian", "params": {"top_k": 5},
             "scenarios": [{"name": "highway_cruise", "duration": 20.0}],
             "workers": 2, "lease": True, "tenant": "team-a"})
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_digest_is_canonical(self):
        a = JobSpec.from_dict({"style": "random", "params": {"n": 5}})
        b = JobSpec.from_dict({"params": {"n": 5}, "style": "random"})
        c = JobSpec.from_dict({"style": "random", "params": {"n": 6}})
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {"style": "unknown"},
        {"style": "random", "params": []},
        {"style": "random", "scenarios": []},
        {"style": "random", "scenarios": [{"duration": 5.0}]},
    ])
    def test_rejects_malformed_payloads(self, payload):
        with pytest.raises(SpecError):
            JobSpec.from_dict(payload)


class TestJobJournal:
    def test_append_replay_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.append({"type": "submitted", "job": "job-1"})
        journal.append({"type": "state", "job": "job-1", "state": QUEUED})
        events = JobJournal(tmp_path / "j").replay()
        assert [e["type"] for e in events] == ["submitted", "state"]
        assert [e["seq"] for e in events] == [1, 2]

    def test_corrupt_event_is_skipped_not_fatal(self, tmp_path):
        journal = JobJournal(tmp_path / "j")
        journal.append({"type": "submitted", "job": "job-1"})
        journal.append({"type": "state", "job": "job-1", "state": QUEUED})
        (tmp_path / "j" / "evt-00000002.json").write_bytes(b"\x00torn{")
        events = JobJournal(tmp_path / "j").replay()
        assert [e["type"] for e in events] == ["submitted"]

    def test_sequence_continues_after_reopen(self, tmp_path):
        JobJournal(tmp_path / "j").append({"type": "submitted"})
        reopened = JobJournal(tmp_path / "j")
        reopened.append({"type": "state"})
        names = sorted(p.name for p in (tmp_path / "j").glob("evt-*"))
        assert names == ["evt-00000001.json", "evt-00000002.json"]


class TestJobStore:
    def test_submit_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        spec = JobSpec.from_dict(spec_dict())
        job, created = store.submit(spec)
        again, created_again = store.submit(spec)
        assert created and not created_again
        assert again is job

    def test_explicit_key_beats_digest(self, tmp_path):
        store = JobStore(tmp_path)
        a, _ = store.submit(JobSpec.from_dict(spec_dict(n=1)), "same-key")
        b, created = store.submit(JobSpec.from_dict(spec_dict(n=2)),
                                  "same-key")
        assert b is a and not created

    def test_illegal_transition_raises(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(JobSpec.from_dict(spec_dict()))
        with pytest.raises(ValueError, match="illegal transition"):
            store.transition(job, COMPLETED)     # submitted -> completed

    def test_recovery_requeues_running_jobs_as_resumable(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(JobSpec.from_dict(spec_dict()))
        store.transition(job, QUEUED)
        store.transition(job, RUNNING, pid=12345, attempts=1)
        # ... server dies here (nothing else is written) ...
        recovered = JobStore(tmp_path)
        requeued = recovered.recover()
        assert [j.id for j in requeued] == [job.id]
        back = recovered.jobs[job.id]
        assert back.state == QUEUED
        assert back.resume is True
        assert back.attempts == 1
        assert back.pid == 12345             # for the orphan-runner kill

    def test_recovery_preserves_terminal_states_and_idempotency(
            self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(JobSpec.from_dict(spec_dict()), "the-key")
        store.transition(job, QUEUED)
        store.transition(job, RUNNING, attempts=1)
        store.transition(job, COMPLETED, summary={"total": 3})
        recovered = JobStore(tmp_path)
        assert recovered.recover() == []
        back = recovered.get_by_key("the-key")
        assert back is not None
        assert back.state == COMPLETED
        assert back.summary == {"total": 3}
        # New submissions continue the id sequence, never reuse it.
        fresh, _ = recovered.submit(JobSpec.from_dict(spec_dict(n=9)))
        assert fresh.id != back.id

    def test_recovery_converges_after_crash_during_recovery(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(JobSpec.from_dict(spec_dict()))
        store.transition(job, QUEUED)
        store.transition(job, RUNNING, attempts=1)
        JobStore(tmp_path).recover()     # writes the requeue, "crashes"
        second = JobStore(tmp_path)
        second.recover()
        assert second.jobs[job.id].state == QUEUED
        assert second.jobs[job.id].resume is True

    def test_draining_jobs_recover_as_resumable(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(JobSpec.from_dict(spec_dict()))
        store.transition(job, QUEUED)
        store.transition(job, RUNNING, attempts=1)
        store.transition(job, DRAINING)
        recovered = JobStore(tmp_path)
        recovered.recover()
        assert recovered.jobs[job.id].state == QUEUED
        assert recovered.jobs[job.id].resume is True

    def test_journal_write_fault_surfaces_not_corrupts(self, tmp_path):
        """ENOSPC while journaling a submission is a loud error; the
        events already on disk replay untouched."""
        store = JobStore(tmp_path)
        store.submit(JobSpec.from_dict(spec_dict(n=1)))
        with failing_writes("evt-"):
            with pytest.raises(OSError):
                store.submit(JobSpec.from_dict(spec_dict(n=2)))
        recovered = JobStore(tmp_path)
        recovered.recover()
        assert len(recovered.jobs) == 1


class TestTenantQueues:
    def test_fifo_within_tenant(self):
        queues = TenantQueues()
        for i in range(3):
            queues.push("a", f"job-{i}")
        assert [queues.pop() for _ in range(3)] == \
            ["job-0", "job-1", "job-2"]
        assert queues.pop() is None

    def test_round_robin_across_tenants(self):
        queues = TenantQueues()
        queues.push("a", "a1")
        queues.push("a", "a2")
        queues.push("b", "b1")
        queues.push("c", "c1")
        order = [queues.pop() for _ in range(4)]
        # One job per tenant per cycle: tenant a cannot starve b and c.
        assert order.index("b1") < order.index("a2")
        assert order.index("c1") < order.index("a2")
        assert sorted(order) == ["a1", "a2", "b1", "c1"]

    def test_remove_and_depth(self):
        queues = TenantQueues()
        queues.push("a", "a1")
        queues.push("b", "b1")
        assert queues.depth() == 2
        assert queues.remove("a", "a1") is True
        assert queues.remove("a", "a1") is False
        assert queues.depth("a") == 0
        assert queues.depth() == 1


class TestAdmissionControl:
    def test_queue_depth_cap(self, tmp_path):
        control = AdmissionControl(tmp_path, max_queue_depth=2,
                                   max_tenant_depth=2,
                                   min_disk_free_bytes=0)
        queues = TenantQueues()
        assert control.admit(queues, "a").accepted
        queues.push("a", "a1")
        queues.push("b", "b1")
        decision = control.admit(queues, "c")
        assert not decision.accepted
        assert "queue full" in decision.reason
        assert decision.retry_after > 0

    def test_tenant_cap_spares_other_tenants(self, tmp_path):
        control = AdmissionControl(tmp_path, max_queue_depth=100,
                                   max_tenant_depth=1,
                                   min_disk_free_bytes=0)
        queues = TenantQueues()
        queues.push("a", "a1")
        assert not control.admit(queues, "a").accepted
        assert control.admit(queues, "b").accepted

    def test_disk_headroom_floor_degrades(self, tmp_path):
        starved = AdmissionControl(tmp_path,
                                   min_disk_free_bytes=1 << 62)
        assert starved.degraded()
        decision = starved.admit(TenantQueues(), "a")
        assert not decision.accepted
        assert "degraded" in decision.reason


class TestWatchdog:
    def test_stall_detection_and_forget(self):
        watchdog = Watchdog(stall_timeout=0.05)
        watchdog.beat("job-1")
        watchdog.beat("job-2")
        assert watchdog.stalled() == []
        time.sleep(0.08)
        assert sorted(watchdog.stalled()) == ["job-1", "job-2"]
        watchdog.beat("job-1")
        watchdog.forget("job-2")
        assert watchdog.stalled() == []


@pytest.fixture
def idle_service(tmp_path):
    """A live service whose scheduler never launches (max_running=0):
    jobs stay queued, making queue/admission behaviour observable."""
    config = ServiceConfig(cache_dir=tmp_path / "cache", max_running=0,
                           max_queue_depth=3, max_tenant_depth=2)
    with ServiceThread(config) as thread:
        yield ServiceClient(port=thread.port), thread


class TestServiceHTTP:
    def test_probes(self, idle_service):
        client, _ = idle_service
        assert client.healthz() == {"status": "ok"}
        assert client.readyz() == {"status": "ready"}

    def test_submit_and_get(self, idle_service):
        client, _ = idle_service
        job = client.submit(spec_dict())
        assert job["state"] == "queued"
        assert client.job(job["id"])["id"] == job["id"]
        assert [j["id"] for j in client.jobs()] == [job["id"]]

    def test_unknown_job_is_404(self, idle_service):
        client, _ = idle_service
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_malformed_spec_is_400(self, idle_service):
        client, _ = idle_service
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"style": "nope"})
        assert excinfo.value.status == 400

    def test_idempotency_key_header(self, idle_service):
        client, _ = idle_service
        a = client.submit(spec_dict(n=1), idempotency_key="key-1")
        b = client.submit(spec_dict(n=2), idempotency_key="key-1")
        assert b["id"] == a["id"]
        assert len(client.jobs()) == 1

    def test_queue_backpressure_is_429_with_retry_after(self,
                                                        idle_service):
        client, _ = idle_service
        for i in range(2):
            client.submit(spec_dict(n=i + 10, tenant=f"t{i}"))
        # Global cap is 3; tenant cap is 2 — tenant t0 trips its cap.
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec_dict(n=50, tenant="t0"))
            client.submit(spec_dict(n=51, tenant="t0"))
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None

    def test_cancel_queued_job(self, idle_service):
        client, _ = idle_service
        job = client.submit(spec_dict())
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        assert client.stats()["queued"] == 0

    def test_stats_shape(self, idle_service):
        client, _ = idle_service
        stats = client.stats()
        assert stats["accepting"] is True
        assert stats["running"] == []
        assert stats["degraded"] is False
        assert stats["disk_free"] > 0

    def test_degraded_mode_rejects_but_stays_healthy(self, tmp_path):
        config = ServiceConfig(cache_dir=tmp_path / "cache",
                               max_running=0,
                               min_disk_free_bytes=1 << 62)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.port)
            assert client.healthz() == {"status": "ok"}
            with pytest.raises(ServiceError) as ready:
                client.readyz()
            assert ready.value.status == 503
            assert ready.value.payload["status"] == "degraded"
            with pytest.raises(ServiceError) as submit:
                client.submit(spec_dict())
            assert submit.value.status == 429
            assert "degraded" in submit.value.payload["error"]

    def test_drain_rejects_new_work_and_journals_queue(self, tmp_path):
        config = ServiceConfig(cache_dir=tmp_path / "cache",
                               max_running=0)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.port)
            job = client.submit(spec_dict())
            thread.drain()
        # The drained server is gone; its durable state must bring the
        # queued job back on the next start.
        store = JobStore(tmp_path / "cache" / "service")
        store.recover()
        assert store.jobs[job["id"]].state == QUEUED

    def test_restarted_service_remembers_idempotency_keys(self, tmp_path):
        cache = tmp_path / "cache"
        config = ServiceConfig(cache_dir=cache, max_running=0)
        with ServiceThread(config) as thread:
            first = ServiceClient(port=thread.port).submit(
                spec_dict(), idempotency_key="sticky")
        with ServiceThread(config) as thread:
            again = ServiceClient(port=thread.port).submit(
                spec_dict(), idempotency_key="sticky")
            assert again["id"] == first["id"]
            assert len(ServiceClient(port=thread.port).jobs()) == 1

    def test_events_endpoint_replays_state_history(self, idle_service):
        client, _ = idle_service
        job = client.submit(spec_dict())
        client.cancel(job["id"])
        events = list(client.events(job["id"]))
        states = [e["state"] for e in events if e["type"] == "state"]
        assert states == ["queued", "cancelled"]

    def test_records_of_unfinished_job_is_404(self, idle_service):
        client, _ = idle_service
        job = client.submit(spec_dict())
        with pytest.raises(ServiceError) as excinfo:
            client.records(job["id"])
        assert excinfo.value.status == 404


class TestServiceExecution:
    """One real (tiny) campaign through the in-process service."""

    def test_job_executes_and_reports_summary(self, tmp_path):
        config = ServiceConfig(cache_dir=tmp_path / "cache")
        spec = {"style": "random", "params": {"n": 2, "seed": 1},
                "scenarios": [{"name": "highway_cruise",
                               "duration": 14.0}]}
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.port)
            job = client.submit(spec)
            final = client.wait(job["id"], timeout=240)
            assert final["state"] == "completed"
            assert final["summary"]["total"] == 2
            assert final["summary"]["journal"]["appended"] == 2
            raw = client.records(job["id"])
            lines = [json.loads(line)
                     for line in raw.decode().strip().splitlines()]
            assert len(lines) == 3           # _meta header + 2 records
            assert lines[0]["_meta"]["style"] == "random"
            events = list(client.events(job["id"]))
            stages = {e["stage"] for e in events
                      if e["type"] == "progress"}
            assert "validated" in stages

    def test_stalled_runner_is_killed_and_failed(self, tmp_path):
        """A runner that wedges (no events, no exit) trips the
        watchdog; with retries exhausted the job fails with a clear
        error."""
        import os
        from repro.service.runner import (ALIVE_INTERVAL_ENV,
                                          STALL_AFTER_ENV)
        os.environ[STALL_AFTER_ENV] = "0"
        os.environ[ALIVE_INTERVAL_ENV] = "0.05"
        try:
            config = ServiceConfig(cache_dir=tmp_path / "cache",
                                   stall_timeout=1.0, max_attempts=1)
            spec = {"style": "random", "params": {"n": 2, "seed": 1},
                    "scenarios": [{"name": "highway_cruise",
                                   "duration": 14.0}]}
            with ServiceThread(config) as thread:
                client = ServiceClient(port=thread.port)
                job = client.submit(spec)
                final = client.wait(job["id"], timeout=120)
                assert final["state"] == "failed"
                assert "died" in final["error"]
        finally:
            os.environ.pop(STALL_AFTER_ENV, None)
            os.environ.pop(ALIVE_INTERVAL_ENV, None)
