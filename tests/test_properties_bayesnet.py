"""Property-based tests (hypothesis) for the Bayesian-network substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet import (DAG, DiscreteFactor, Discretizer,
                            GaussianInference,
                            LinearGaussianBayesianNetwork, LinearGaussianCPD,
                            fit_linear_gaussian_network)


@st.composite
def factors(draw, max_vars=3, max_card=4):
    n_vars = draw(st.integers(1, max_vars))
    names = [f"x{i}" for i in range(n_vars)]
    cards = draw(st.lists(st.integers(2, max_card), min_size=n_vars,
                          max_size=n_vars))
    size = int(np.prod(cards))
    values = draw(st.lists(
        st.floats(0.0, 10.0, allow_nan=False), min_size=size, max_size=size))
    return DiscreteFactor(names, cards, np.array(values).reshape(cards))


@st.composite
def positive_factors(draw, max_vars=3, max_card=4):
    n_vars = draw(st.integers(1, max_vars))
    names = [f"x{i}" for i in range(n_vars)]
    cards = draw(st.lists(st.integers(2, max_card), min_size=n_vars,
                          max_size=n_vars))
    size = int(np.prod(cards))
    values = draw(st.lists(
        st.floats(0.01, 10.0, allow_nan=False), min_size=size, max_size=size))
    return DiscreteFactor(names, cards, np.array(values).reshape(cards))


class TestFactorProperties:
    @given(factors())
    def test_marginalize_preserves_total_mass(self, factor):
        variable = factor.variables[0]
        reduced = factor.marginalize([variable])
        assert np.isclose(reduced.values.sum(), factor.values.sum())

    @given(factors())
    def test_marginalization_order_commutes(self, factor):
        if len(factor.variables) < 2:
            return
        a, b = factor.variables[:2]
        one = factor.marginalize([a]).marginalize([b])
        other = factor.marginalize([b]).marginalize([a])
        assert np.allclose(one.values, other.values)

    @given(factors(), factors())
    def test_product_commutes(self, f, g):
        # Rename g's variables so overlap is partial but cardinalities match.
        fg = f.product(g) if _compatible(f, g) else None
        if fg is None:
            return
        gf = g.product(f)
        permutation = [gf.variables.index(v) for v in fg.variables]
        assert np.allclose(fg.values, gf.values.transpose(permutation))

    @given(positive_factors())
    def test_normalize_sums_to_one(self, factor):
        assert np.isclose(factor.normalize().values.sum(), 1.0)

    @given(positive_factors())
    def test_argmax_attains_maximum(self, factor):
        assignment = factor.argmax()
        assert np.isclose(factor.get(assignment), factor.values.max())

    @given(factors())
    def test_maximize_bounds_marginalize(self, factor):
        variable = factor.variables[0]
        card = factor.cardinality(variable)
        maxed = factor.maximize([variable])
        summed = factor.marginalize([variable])
        assert (summed.values <= maxed.values * card + 1e-9).all()

    @given(factors(), st.integers(0, 3))
    def test_reduce_then_marginalize_consistent(self, factor, state):
        if len(factor.variables) < 2:
            return
        variable = factor.variables[0]
        state = state % factor.cardinality(variable)
        reduced = factor.reduce({variable: state})
        # Reduction commutes with marginalizing a different variable.
        other = factor.variables[1]
        left = reduced.marginalize([other])
        right = factor.marginalize([other]).reduce({variable: state})
        assert np.allclose(left.values, right.values)


def _compatible(f, g):
    for variable in set(f.variables) & set(g.variables):
        if f.cardinality(variable) != g.cardinality(variable):
            return False
    return True


class TestDagProperties:
    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                    max_size=25))
    def test_insertion_never_creates_cycle(self, pairs):
        dag = DAG()
        for a, b in pairs:
            try:
                dag.add_edge(f"n{a}", f"n{b}")
            except ValueError:
                pass  # cycle or duplicate correctly refused
        order = dag.topological_order()
        position = {n: i for i, n in enumerate(order)}
        for parent, child in dag.edges():
            assert position[parent] < position[child]


class TestGaussianProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-5, 5, allow_nan=False), min_size=3,
                    max_size=3),
           st.floats(0.1, 3.0))
    def test_conditioning_reduces_variance(self, weights, variance):
        net = LinearGaussianBayesianNetwork(edges=[("a", "b"), ("b", "c")])
        net.add_cpd(LinearGaussianCPD("a", weights[0], variance))
        net.add_cpd(LinearGaussianCPD("b", weights[1], variance,
                                      parents=["a"], weights=[weights[2]]))
        net.add_cpd(LinearGaussianCPD("c", 0.0, variance, parents=["b"],
                                      weights=[1.0]))
        engine = GaussianInference(net)
        prior_var = engine.posterior(["c"]).variance_of("c")
        posterior_var = engine.posterior(
            ["c"], evidence={"a": 1.0}).variance_of("c")
        assert posterior_var <= prior_var + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_learning_then_inference_close_to_truth(self, seed):
        truth = LinearGaussianBayesianNetwork(edges=[("x", "y")])
        truth.add_cpd(LinearGaussianCPD("x", 0.0, 1.0))
        truth.add_cpd(LinearGaussianCPD("y", 1.0, 0.5, parents=["x"],
                                        weights=[2.0]))
        rng = np.random.default_rng(seed)
        draws = truth.sample(rng, n=2500)
        data = {v: np.array([d[v] for d in draws]) for v in ("x", "y")}
        learned = fit_linear_gaussian_network(DAG(edges=[("x", "y")]), data)
        cpd = learned.cpds["y"]
        assert abs(cpd.weights[0] - 2.0) < 0.15
        assert abs(cpd.intercept - 1.0) < 0.15


class TestDiscretizerProperties:
    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=5,
                    max_size=60),
           st.integers(2, 8))
    def test_transform_in_range(self, values, n_bins):
        data = {"v": np.array(values)}
        d = Discretizer.from_data(data, n_bins)
        binned = d.transform(data)["v"]
        assert (binned >= 0).all()
        assert (binned < n_bins).all()

    @given(st.floats(-50, 50, allow_nan=False), st.integers(2, 6))
    def test_midpoint_lies_in_bin(self, value, n_bins):
        d = Discretizer.uniform({"v": (-60.0, 60.0)}, n_bins)
        index = d.transform_value("v", value)
        mid = d.midpoint("v", index)
        edges = d.edges["v"]
        assert edges[index] <= mid <= edges[index + 1]
