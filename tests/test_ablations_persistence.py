"""Tests for the ablation engines and JSON persistence."""

from dataclasses import replace

import pytest

from repro.core import (BayesianFaultInjector, Campaign, CampaignConfig,
                        CandidateFault, ConditioningFaultInjector,
                        DiscreteBayesianFaultInjector, Hazard)
from repro.core.persistence import (load_candidates, load_summary,
                                    save_candidates, save_summary)
from repro.core.results import CampaignSummary, ExperimentRecord
from repro.sim import highway_cruise, lead_vehicle_cutin, stalled_vehicle


@pytest.fixture(scope="module")
def campaign():
    scenarios = [replace(highway_cruise(), duration=20.0),
                 replace(lead_vehicle_cutin(), duration=15.0),
                 replace(stalled_vehicle(), duration=20.0)]
    return Campaign(scenarios, CampaignConfig())


@pytest.fixture(scope="module")
def golden(campaign):
    return list(campaign.golden_runs().values())


class TestConditioningAblation:
    def test_do_and_conditioning_differ(self, campaign, golden):
        """Conditioning leaks belief backward; do() must not.

        Scanned over a scene sample rather than one arbitrary scene:
        on clear-road scenes the kinematic early-out can make the two
        engines coincide, which says nothing about the ablation.
        """
        do_engine = BayesianFaultInjector.train(golden)
        cond_engine = ConditioningFaultInjector.train(golden)
        disagreements = 0
        for scene in list(campaign.scene_rows())[::10]:
            for variable, value in [("throttle", 1.0), ("brake", 1.0),
                                    ("tracked_gap", 0.0)]:
                do_pred = do_engine.predicted_potential(scene, variable,
                                                        value)
                cond_pred = cond_engine.predicted_potential(scene, variable,
                                                            value)
                if abs(do_pred.longitudinal
                       - cond_pred.longitudinal) > 1e-6:
                    disagreements += 1
        assert disagreements > 0

    def test_conditioning_engine_still_mines(self, campaign, golden):
        engine = ConditioningFaultInjector.train(golden)
        candidates, report = engine.mine_critical_faults(
            campaign.scene_rows(), top_k=5)
        assert report.n_scored > 0
        # It runs; quality comparison happens in the ablation bench.
        assert isinstance(candidates, list)


class TestDiscreteAblation:
    def test_training(self, golden):
        engine = DiscreteBayesianFaultInjector.train(golden, n_bins=5)
        assert len(engine.network.dag) == 21
        assert engine.discretizer.n_bins("v") == 5

    def test_actuation_inference_bounded(self, campaign, golden):
        engine = DiscreteBayesianFaultInjector.train(golden, n_bins=5)
        scene = list(campaign.scene_rows())[50]
        actuation = engine.infer_actuation(scene, "gap", 0.01)
        assert 0.0 <= actuation["throttle"] <= 1.0
        assert 0.0 <= actuation["brake"] <= 1.0

    def test_intervened_node_passes_through(self, campaign, golden):
        engine = DiscreteBayesianFaultInjector.train(golden, n_bins=5)
        scene = list(campaign.scene_rows())[50]
        actuation = engine.infer_actuation(scene, "throttle", 1.0)
        assert actuation["throttle"] == 1.0

    def test_response_sensitive_to_intervened_gap(self, campaign, golden):
        """The MAP actuation must react to the forced belief.

        Note the discrete model cannot extrapolate to unseen parent
        combinations (smoothing makes them uniform), so the assertion is
        sensitivity, not direction — the directional comparison against
        the linear-Gaussian engine lives in the ablation bench.
        """
        engine = DiscreteBayesianFaultInjector.train(golden, n_bins=7)
        scenes = [s for s in campaign.scene_rows()
                  if s.scenario == "stalled_vehicle"][20:60:5]
        changed = any(
            engine.infer_actuation(s, "gap", 1.0)
            != engine.infer_actuation(s, "gap", 240.0)
            for s in scenes)
        assert changed


class TestPersistence:
    def record(self):
        return ExperimentRecord(
            scenario="s", injection_tick=10, variable="throttle", value=1.0,
            duration_ticks=4, seed=0, hazard=Hazard.COLLISION, landed=True,
            pre_delta_long=5.0, pre_delta_lat=2.0, min_delta_long=-1.0,
            min_delta_lat=1.0, sim_seconds=9.0, wall_seconds=0.2)

    def test_summary_round_trip(self, tmp_path):
        summary = CampaignSummary(records=[self.record(), self.record()])
        path = tmp_path / "summary.json"
        save_summary(summary, path)
        loaded = load_summary(path)
        assert loaded.total == 2
        assert loaded.records[0] == self.record()
        assert loaded.hazard_rate == 1.0

    def test_candidates_round_trip(self, tmp_path):
        candidate = CandidateFault(
            scenario="s", injection_tick=12, variable="brake", value=0.0,
            predicted_delta_long=-2.0, predicted_delta_lat=3.0,
            observed_delta_long=4.0, observed_delta_lat=3.5)
        path = tmp_path / "candidates.json"
        save_candidates([candidate], path)
        loaded = load_candidates(path)
        assert loaded == [candidate]

    def test_empty_summary_round_trip(self, tmp_path):
        path = tmp_path / "empty.json"
        save_summary(CampaignSummary(), path)
        assert load_summary(path).total == 0
