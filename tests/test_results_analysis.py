"""Tests for experiment records, summaries, and analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (ascii_table, critical_scene_count, csv_series,
                            delta_distribution, hazard_table)
from repro.core import CampaignSummary, ExperimentRecord, Hazard, worst_hazard


def record(variable="throttle", hazard=Hazard.NONE, scenario="s",
           tick=10, wall=0.1):
    return ExperimentRecord(
        scenario=scenario, injection_tick=tick, variable=variable,
        value=1.0, duration_ticks=2, seed=0, hazard=hazard, landed=True,
        pre_delta_long=10.0, pre_delta_lat=2.0, min_delta_long=5.0,
        min_delta_lat=1.0, sim_seconds=10.0, wall_seconds=wall)


class TestHazard:
    def test_worst_hazard_ordering(self):
        assert worst_hazard([Hazard.NONE, Hazard.SAFETY_VIOLATION,
                             Hazard.COLLISION]) is Hazard.COLLISION
        assert worst_hazard([Hazard.OFF_ROAD,
                             Hazard.SAFETY_VIOLATION]) is Hazard.OFF_ROAD
        assert worst_hazard([]) is Hazard.NONE

    def test_record_hazardous(self):
        assert record(hazard=Hazard.COLLISION).hazardous
        assert not record(hazard=Hazard.NONE).hazardous

    def test_pre_injection_safe(self):
        assert record().pre_injection_safe


class TestCampaignSummary:
    def summary(self):
        return CampaignSummary(records=[
            record("throttle", Hazard.COLLISION),
            record("throttle", Hazard.NONE),
            record("brake", Hazard.SAFETY_VIOLATION),
            record("steering", Hazard.NONE),
        ])

    def test_counts(self):
        summary = self.summary()
        assert summary.total == 4
        assert summary.hazards == 2
        assert summary.hazard_rate == pytest.approx(0.5)

    def test_breakdowns(self):
        summary = self.summary()
        assert summary.hazard_breakdown() == {
            "collision": 1, "safety_violation": 1, "none": 2}
        assert summary.hazards_by_variable() == {"throttle": 1, "brake": 1}
        assert summary.experiments_by_variable() == {
            "throttle": 2, "brake": 1, "steering": 1}

    def test_empty_summary(self):
        summary = CampaignSummary()
        assert summary.hazard_rate == 0.0
        assert summary.total == 0

    def test_hazardous_scenes(self):
        summary = CampaignSummary(records=[
            record("throttle", Hazard.COLLISION, scenario="a", tick=5),
            record("brake", Hazard.COLLISION, scenario="a", tick=5),
            record("brake", Hazard.NONE, scenario="b", tick=9),
        ])
        assert summary.hazardous_scenes() == {("a", 5)}

    def test_wall_seconds(self):
        assert self.summary().wall_seconds == pytest.approx(0.4)


class TestAnalysis:
    def test_hazard_table_sorted_by_rate(self):
        summary = CampaignSummary(records=[
            record("throttle", Hazard.COLLISION),
            record("throttle", Hazard.COLLISION),
            record("brake", Hazard.COLLISION),
            record("brake", Hazard.NONE),
            record("gps_y", Hazard.NONE),
        ])
        rows = hazard_table(summary)
        assert rows[0][0] == "throttle"
        assert rows[0][3] == pytest.approx(1.0)
        assert rows[-1][0] == "gps_y"

    def test_delta_distribution_bins(self):
        deltas = np.array([-2.0, 1.0, 10.0, 50.0, 500.0])
        rows = delta_distribution(deltas)
        assert sum(count for _, count in rows) == 5
        assert rows[0][1] == 1  # the negative delta

    def test_critical_scene_count(self):
        deltas = np.array([1.0, 4.0, 6.0, 100.0])
        assert critical_scene_count(deltas, threshold=5.0) == 2

    def test_ascii_table_alignment(self):
        table = ascii_table(["a", "bb"], [[1, 2.5], ["xyz", 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "xyz" in lines[2] or "xyz" in lines[3]

    def test_ascii_table_width_mismatch(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [[1, 2]])

    def test_csv_series(self):
        csv = csv_series(["t", "v"], [[0, 1.0], [1, 2.0]])
        assert csv.splitlines()[0] == "t,v"
        assert csv.splitlines()[1] == "0,1.000"

    def test_csv_width_mismatch(self):
        with pytest.raises(ValueError):
            csv_series(["a", "b"], [[1]])
