"""Tests for variable elimination, checked against hand-computed values."""

import numpy as np
import pytest

from repro.bayesnet import (DiscreteBayesianNetwork, TabularCPD,
                            VariableElimination)


def sprinkler_network():
    """The classic rain/sprinkler/grass network with textbook parameters."""
    net = DiscreteBayesianNetwork(edges=[("rain", "sprinkler"),
                                         ("rain", "grass"),
                                         ("sprinkler", "grass")])
    net.add_cpd(TabularCPD("rain", 2, [[0.8], [0.2]]))
    net.add_cpd(TabularCPD("sprinkler", 2, [[0.6, 0.99], [0.4, 0.01]],
                           parents=["rain"], parent_cards=[2]))
    # grass wet: columns (rain, sprinkler) = (0,0),(0,1),(1,0),(1,1)
    net.add_cpd(TabularCPD("grass", 2,
                           [[1.0, 0.1, 0.2, 0.01],
                            [0.0, 0.9, 0.8, 0.99]],
                           parents=["rain", "sprinkler"],
                           parent_cards=[2, 2]))
    return net


def chain_network():
    """a -> b -> c with simple parameters for hand calculation."""
    net = DiscreteBayesianNetwork(edges=[("a", "b"), ("b", "c")])
    net.add_cpd(TabularCPD("a", 2, [[0.3], [0.7]]))
    net.add_cpd(TabularCPD("b", 2, [[0.9, 0.2], [0.1, 0.8]],
                           parents=["a"], parent_cards=[2]))
    net.add_cpd(TabularCPD("c", 2, [[0.5, 0.6], [0.5, 0.4]],
                           parents=["b"], parent_cards=[2]))
    return net


class TestPriorMarginals:
    def test_root_marginal_is_prior(self):
        engine = VariableElimination(sprinkler_network())
        marginal = engine.marginal("rain")
        assert np.allclose(marginal.values, [0.8, 0.2])

    def test_chain_marginal(self):
        engine = VariableElimination(chain_network())
        # P(b=1) = 0.3*0.1 + 0.7*0.8 = 0.59
        marginal = engine.marginal("b")
        assert marginal.values[1] == pytest.approx(0.59)

    def test_grass_prior(self):
        engine = VariableElimination(sprinkler_network())
        # P(grass=1) = sum over rain, sprinkler
        # rain=0: 0.8 * (0.6*0 + 0.4*0.9) = 0.8*0.36 = 0.288
        # rain=1: 0.2 * (0.99*0.8 + 0.01*0.99) = 0.2*0.8019 = 0.16038
        marginal = engine.marginal("grass")
        assert marginal.values[1] == pytest.approx(0.288 + 0.16038)


class TestPosteriors:
    def test_rain_given_wet_grass(self):
        engine = VariableElimination(sprinkler_network())
        posterior = engine.marginal("rain", evidence={"grass": 1})
        # P(rain=1 | grass=1) = 0.16038 / 0.44838
        assert posterior.values[1] == pytest.approx(0.16038 / 0.44838,
                                                    rel=1e-6)

    def test_explaining_away(self):
        engine = VariableElimination(sprinkler_network())
        p_rain_wet = engine.marginal(
            "rain", evidence={"grass": 1}).values[1]
        p_rain_wet_sprinkler = engine.marginal(
            "rain", evidence={"grass": 1, "sprinkler": 1}).values[1]
        # Knowing the sprinkler ran explains the wet grass away from rain.
        assert p_rain_wet_sprinkler < p_rain_wet

    def test_chain_evidence_downstream(self):
        engine = VariableElimination(chain_network())
        # P(a=1 | b=1) = 0.7*0.8 / 0.59
        posterior = engine.marginal("a", evidence={"b": 1})
        assert posterior.values[1] == pytest.approx(0.56 / 0.59)

    def test_joint_query_shape_and_sum(self):
        engine = VariableElimination(sprinkler_network())
        joint = engine.query(["rain", "sprinkler"], evidence={"grass": 1})
        assert joint.values.shape == (2, 2)
        assert joint.values.sum() == pytest.approx(1.0)

    def test_query_matches_brute_force(self):
        net = sprinkler_network()
        engine = VariableElimination(net)
        posterior = engine.query(["sprinkler"], evidence={"grass": 1})
        # Brute force over the full joint.
        total = np.zeros(2)
        for r in range(2):
            for s in range(2):
                p = (net.cpds["rain"].probability(r)
                     * net.cpds["sprinkler"].probability(s, {"rain": r})
                     * net.cpds["grass"].probability(
                         1, {"rain": r, "sprinkler": s}))
                total[s] += p
        assert np.allclose(posterior.values, total / total.sum())


class TestMapQuery:
    def test_map_single_variable(self):
        engine = VariableElimination(sprinkler_network())
        assignment = engine.map_query(["rain"], evidence={"grass": 1})
        assert assignment == {"rain": 0}

    def test_map_joint(self):
        engine = VariableElimination(sprinkler_network())
        assignment = engine.map_query(["rain", "sprinkler"],
                                      evidence={"grass": 1})
        joint = engine.query(["rain", "sprinkler"], evidence={"grass": 1})
        assert joint.get(assignment) == pytest.approx(joint.values.max())


class TestErrors:
    def test_query_variable_in_evidence(self):
        engine = VariableElimination(sprinkler_network())
        with pytest.raises(ValueError):
            engine.query(["rain"], evidence={"rain": 1})

    def test_unknown_query_variable(self):
        engine = VariableElimination(sprinkler_network())
        with pytest.raises(ValueError):
            engine.query(["nope"])

    def test_impossible_evidence(self):
        net = DiscreteBayesianNetwork(edges=[("a", "b")])
        net.add_cpd(TabularCPD("a", 2, [[1.0], [0.0]]))
        net.add_cpd(TabularCPD("b", 2, [[1.0, 0.0], [0.0, 1.0]],
                               parents=["a"], parent_cards=[2]))
        engine = VariableElimination(net)
        with pytest.raises(ZeroDivisionError):
            engine.marginal("a", evidence={"b": 1})

    def test_incomplete_network_rejected(self):
        net = DiscreteBayesianNetwork(edges=[("a", "b")])
        net.add_cpd(TabularCPD("a", 2, [[0.5], [0.5]]))
        with pytest.raises(ValueError):
            VariableElimination(net)


class TestNetworkContainer:
    def test_cpd_parent_mismatch_rejected(self):
        net = DiscreteBayesianNetwork(edges=[("a", "b")])
        with pytest.raises(ValueError):
            net.add_cpd(TabularCPD("b", 2, [[0.5], [0.5]]))

    def test_sampling_approximates_marginals(self):
        net = chain_network()
        rng = np.random.default_rng(7)
        draws = net.sample(rng, n=3000)
        freq_b = np.mean([d["b"] for d in draws])
        assert freq_b == pytest.approx(0.59, abs=0.03)

    def test_log_likelihood(self):
        net = chain_network()
        ll = net.log_likelihood({"a": 0, "b": 0, "c": 1})
        assert ll == pytest.approx(np.log(0.3 * 0.9 * 0.5))

    def test_log_likelihood_impossible(self):
        net = DiscreteBayesianNetwork()
        net.add_cpd(TabularCPD("a", 2, [[1.0], [0.0]]))
        assert net.log_likelihood({"a": 1}) == float("-inf")
