"""Tests for discrete factor algebra."""

import numpy as np
import pytest

from repro.bayesnet import DiscreteFactor, factor_product, identity_factor


def make_ab():
    # phi(a, b) with a in {0,1}, b in {0,1,2}
    return DiscreteFactor(["a", "b"], [2, 3],
                          [[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]])


class TestConstruction:
    def test_shape_enforced(self):
        with pytest.raises(ValueError):
            DiscreteFactor(["a"], [2], [0.1, 0.2, 0.3])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            DiscreteFactor(["a"], [2], [-0.1, 1.1])

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError):
            DiscreteFactor(["a", "a"], [2, 2], np.ones((2, 2)))

    def test_cardinality_lookup(self):
        assert make_ab().cardinality("b") == 3

    def test_unknown_variable(self):
        with pytest.raises(KeyError):
            make_ab().cardinality("zz")


class TestProduct:
    def test_product_disjoint_is_outer(self):
        fa = DiscreteFactor(["a"], [2], [0.5, 0.5])
        fb = DiscreteFactor(["b"], [2], [0.25, 0.75])
        product = fa.product(fb)
        assert product.variables == ("a", "b")
        assert product.values[1, 0] == pytest.approx(0.125)

    def test_product_shared_variable_aligns(self):
        fab = make_ab()
        fb = DiscreteFactor(["b"], [3], [1.0, 2.0, 3.0])
        product = fab.product(fb)
        assert product.values[0, 2] == pytest.approx(0.3 * 3.0)
        assert product.values[1, 1] == pytest.approx(0.5 * 2.0)

    def test_product_order_invariance(self):
        fab = make_ab()
        fb = DiscreteFactor(["b", "c"], [3, 2], np.arange(6.0).reshape(3, 2))
        left = fab.product(fb)
        right = fb.product(fab)
        permutation = [right.variables.index(v) for v in left.variables]
        assert np.allclose(left.values, right.values.transpose(permutation))

    def test_product_cardinality_mismatch(self):
        fab = make_ab()
        bad = DiscreteFactor(["b"], [2], [0.5, 0.5])
        with pytest.raises(ValueError):
            fab.product(bad)

    def test_identity_factor(self):
        fab = make_ab()
        same = fab.product(identity_factor())
        assert np.allclose(same.values, fab.values)

    def test_factor_product_helper(self):
        fa = DiscreteFactor(["a"], [2], [1.0, 2.0])
        fb = DiscreteFactor(["b"], [2], [3.0, 4.0])
        combined = factor_product([fa, fb])
        assert combined.values[1, 1] == pytest.approx(8.0)


class TestEliminate:
    def test_marginalize(self):
        marginal = make_ab().marginalize(["b"])
        assert marginal.variables == ("a",)
        assert np.allclose(marginal.values, [0.6, 1.5])

    def test_maximize(self):
        maxed = make_ab().maximize(["a"])
        assert np.allclose(maxed.values, [0.4, 0.5, 0.6])

    def test_marginalize_everything_gives_scalar(self):
        scalar = make_ab().marginalize(["a", "b"])
        assert scalar.variables == ()
        assert scalar.values.item() == pytest.approx(2.1)

    def test_marginalize_missing_raises(self):
        with pytest.raises(KeyError):
            make_ab().marginalize(["zz"])


class TestReduce:
    def test_reduce_drops_variable(self):
        reduced = make_ab().reduce({"b": 1})
        assert reduced.variables == ("a",)
        assert np.allclose(reduced.values, [0.2, 0.5])

    def test_reduce_ignores_foreign_evidence(self):
        reduced = make_ab().reduce({"zz": 0})
        assert reduced.variables == ("a", "b")

    def test_reduce_out_of_range(self):
        with pytest.raises(IndexError):
            make_ab().reduce({"b": 5})


class TestQueries:
    def test_normalize(self):
        normalized = make_ab().normalize()
        assert normalized.values.sum() == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        zero = DiscreteFactor(["a"], [2], [0.0, 0.0])
        with pytest.raises(ZeroDivisionError):
            zero.normalize()

    def test_argmax(self):
        assert make_ab().argmax() == {"a": 1, "b": 2}

    def test_get(self):
        assert make_ab().get({"a": 0, "b": 2}) == pytest.approx(0.3)

    def test_copy_independent(self):
        original = make_ab()
        clone = original.copy()
        clone.values[0, 0] = 99.0
        assert original.values[0, 0] == pytest.approx(0.1)
