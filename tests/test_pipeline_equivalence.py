"""The streaming pipeline must equal the barrier oracle, shard by shard.

Two guarantees ride the :mod:`repro.core.pipeline` driver:

* **Pipeline equivalence** — every campaign style run with
  ``pipeline=True`` (the default) emits a record stream bit-for-bit
  identical to the barrier path (``pipeline=False``), order included,
  serial and pooled.
* **Shard equivalence** — a campaign split across shards produces
  disjoint record streams whose merge (``CampaignSummary.merge`` /
  ``persistence.merge_record_shards``) equals the unsharded run.
"""

import gzip
import math
from dataclasses import asdict, replace

import pytest

from repro.core import (Campaign, CampaignConfig, CampaignPipeline,
                        ExperimentRecord, Hazard, ListSink)
from repro.core.persistence import (JsonlRecordSink, iter_records_jsonl,
                                    load_summary_jsonl,
                                    merge_record_shards)
from repro.core.results import CampaignSummary
from repro.sim import highway_cruise, lead_vehicle_cutin, queued_traffic


def small_scenarios():
    return [replace(highway_cruise(), duration=24.0),
            replace(lead_vehicle_cutin(), duration=16.0),
            replace(queued_traffic(), duration=18.0)]


def strip_wall(records):
    rows = []
    for record in records:
        row = asdict(record)
        row.pop("wall_seconds")   # host timing necessarily differs
        rows.append(row)
    return rows


def candidate_keys(candidates):
    return [(c.scenario, c.injection_tick, c.variable, c.value)
            for c in candidates]


@pytest.fixture(scope="module")
def oracle():
    """The barrier reference path (pipeline=False), goldens collected."""
    campaign = Campaign(small_scenarios(), CampaignConfig())
    campaign.golden_runs()
    return campaign


@pytest.fixture(scope="module")
def piped():
    """A separate campaign object driven through the pipeline."""
    return Campaign(small_scenarios(), CampaignConfig())


class TestPipelineEquivalence:
    """pipeline=True == pipeline=False, record for record, in order."""

    @pytest.mark.parametrize("workers", [None, 2])
    def test_random_campaign(self, oracle, piped, workers):
        reference = oracle.random_campaign(8, seed=11, pipeline=False)
        streamed = piped.random_campaign(8, seed=11, workers=workers)
        assert strip_wall(streamed.records) == strip_wall(reference.records)
        assert streamed.same_aggregates(reference)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_exhaustive_campaign_streams_per_scenario(self, oracle, piped,
                                                      workers):
        reference = oracle.exhaustive_campaign(
            tick_stride=40, variable_names=["brake", "steering"],
            pipeline=False)
        streamed = piped.exhaustive_campaign(
            tick_stride=40, variable_names=["brake", "steering"],
            workers=workers)
        assert strip_wall(streamed.records) == strip_wall(reference.records)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_exhaustive_campaign_with_cap(self, oracle, piped, workers):
        reference = oracle.exhaustive_campaign(
            tick_stride=40, variable_names=["brake"], max_experiments=7,
            pipeline=False)
        streamed = piped.exhaustive_campaign(
            tick_stride=40, variable_names=["brake"], max_experiments=7,
            workers=workers)
        assert streamed.total == 7
        assert strip_wall(streamed.records) == strip_wall(reference.records)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_architectural_campaign(self, oracle, piped, workers):
        reference, ref_outcomes = oracle.architectural_campaign(
            25, seed=3, pipeline=False)
        streamed, outcomes = piped.architectural_campaign(
            25, seed=3, workers=workers)
        assert outcomes == ref_outcomes
        assert strip_wall(streamed.records) == strip_wall(reference.records)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_bayesian_campaign_top_k(self, oracle, piped, workers):
        reference = oracle.bayesian_campaign(top_k=6, pipeline=False)
        streamed = piped.bayesian_campaign(top_k=6, workers=workers)
        assert candidate_keys(streamed.candidates) == \
            candidate_keys(reference.candidates)
        for mined, ref in zip(streamed.candidates, reference.candidates):
            # Per-scenario mining scores in smaller batches, so the
            # predictions agree to the suite's batched-vs-scalar bound.
            assert mined.predicted_delta_long == pytest.approx(
                ref.predicted_delta_long, abs=1e-9)
            assert mined.predicted_delta_lat == pytest.approx(
                ref.predicted_delta_lat, abs=1e-9)
        assert streamed.mining.n_scored == reference.mining.n_scored
        assert streamed.mining.n_scenes == reference.mining.n_scenes
        assert strip_wall(streamed.summary.records) == \
            strip_wall(reference.summary.records)
        assert streamed.precision == reference.precision

    @pytest.mark.parametrize("workers", [None, 2])
    def test_bayesian_campaign_eager_dispatch(self, oracle, piped,
                                              workers):
        """Without top_k, validation overlaps mining — results unchanged."""
        reference = oracle.bayesian_campaign(pipeline=False)
        streamed = piped.bayesian_campaign(workers=workers)
        assert candidate_keys(streamed.candidates) == \
            candidate_keys(reference.candidates)
        assert strip_wall(streamed.summary.records) == \
            strip_wall(reference.summary.records)

    def test_bayesian_scalar_miner(self):
        """The scalar reference miner rides the pipeline unchanged."""
        scenarios = [replace(lead_vehicle_cutin(), duration=14.0)]
        reference = Campaign(scenarios, CampaignConfig()).bayesian_campaign(
            top_k=3, use_batched=False, pipeline=False)
        streamed = Campaign(scenarios, CampaignConfig()).bayesian_campaign(
            top_k=3, use_batched=False)
        assert candidate_keys(streamed.candidates) == \
            candidate_keys(reference.candidates)
        assert strip_wall(streamed.summary.records) == \
            strip_wall(reference.summary.records)

    def test_spawn_pool_matches_serial(self, oracle, piped):
        """The pipeline's no-fork path: state ships by pickle + spool."""
        reference = oracle.random_campaign(6, seed=5, pipeline=False)
        outcome = CampaignPipeline(
            piped, workers=2, start_method="spawn").run(
            piped._random_plan(6, 5))
        assert strip_wall(outcome.summary.records) == \
            strip_wall(reference.records)


class TestPipelineStreaming:
    def test_sink_receives_records_in_oracle_order(self, oracle, piped):
        reference = oracle.random_campaign(8, seed=11, pipeline=False)
        sink = ListSink()
        streamed = piped.random_campaign(8, seed=11, workers=2,
                                         record_sink=sink)
        assert strip_wall(sink.records) == strip_wall(reference.records)
        assert streamed.records == []          # not retained with a sink
        assert streamed.same_aggregates(reference)

    def test_gzip_record_stream_round_trips(self, tmp_path, oracle,
                                            piped):
        reference = oracle.random_campaign(6, seed=7, pipeline=False)
        path = tmp_path / "records.jsonl.gz"
        with JsonlRecordSink(path) as sink:
            piped.random_campaign(6, seed=7, record_sink=sink)
        assert sink.count == 6
        with gzip.open(path, "rt", encoding="utf-8") as stream:
            assert len(stream.read().strip().split("\n")) == 6
        assert strip_wall(iter_records_jsonl(path)) == \
            strip_wall(reference.records)
        loaded = load_summary_jsonl(path, keep_records=False)
        assert loaded.same_aggregates(reference)

    def test_gzip_sink_buffers_instead_of_sync_flushing(self, tmp_path):
        """Per-record flushes on gzip emit one deflate block per record
        (~30x size); compressed sinks must buffer until close."""
        from repro.core.persistence import JsonlRecordSink
        record = TestSummaryMerge().records("s0", 0)[0]
        plain = JsonlRecordSink(tmp_path / "r.jsonl")
        packed = JsonlRecordSink(tmp_path / "r.jsonl.gz")
        for _ in range(2000):
            plain.add(record)
            packed.add(record)
        plain.close()
        packed.close()
        plain_size = (tmp_path / "r.jsonl").stat().st_size
        packed_size = (tmp_path / "r.jsonl.gz").stat().st_size
        assert packed_size < plain_size / 20
        assert len(list(iter_records_jsonl(tmp_path / "r.jsonl.gz"))) \
            == 2000

    def test_save_summary_rejects_streamed_summary(self, tmp_path,
                                                   piped):
        from repro.core.persistence import save_summary
        sink = ListSink()
        streamed = piped.random_campaign(3, seed=4, record_sink=sink)
        with pytest.raises(ValueError, match="sink"):
            save_summary(streamed, tmp_path / "empty.json")

    def test_progress_events(self, piped):
        events = []
        piped.random_campaign(4, seed=1, on_progress=events.append)
        stages = {event.stage for event in events}
        assert {"golden", "validated"} <= stages
        validated = [e for e in events if e.stage == "validated"]
        assert [e.done for e in validated] == [1, 2, 3, 4]
        assert all(e.total == 4 for e in validated)

    def test_progress_events_bayesian_mining(self, piped):
        events = []
        piped.bayesian_campaign(top_k=4, on_progress=events.append)
        mined = [e for e in events if e.stage == "mined"]
        assert [e.done for e in mined] == [1, 2, 3]
        assert {e.scenario for e in mined} == \
            {s.name for s in piped.scenarios}

    def test_progress_events_barrier_path(self, oracle):
        events = []
        oracle.random_campaign(3, seed=2, pipeline=False,
                               on_progress=events.append)
        assert {"golden", "validated"} <= {e.stage for e in events}


def shard_config(index, count):
    return CampaignConfig(shard_index=index, shard_count=count)


class TestSharding:
    def test_shard_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(shard_count=0)
        with pytest.raises(ValueError):
            CampaignConfig(shard_index=2, shard_count=2)
        with pytest.raises(ValueError):
            CampaignConfig(shard_index=-1, shard_count=2)

    def test_owned_scenarios_partition(self):
        scenarios = small_scenarios()
        owned = [Campaign(scenarios, shard_config(i, 2)).owned_scenarios()
                 for i in range(2)]
        names = [s.name for shard in owned for s in shard]
        assert sorted(names) == sorted(s.name for s in scenarios)
        assert [s.name for s in owned[0]] == \
            [scenarios[0].name, scenarios[2].name]

    def test_barrier_path_rejects_sharding(self):
        campaign = Campaign(small_scenarios(), shard_config(0, 2))
        with pytest.raises(ValueError, match="pipeline"):
            campaign.random_campaign(4, pipeline=False)

    def test_schedule_ticks_match_golden_ticks(self, oracle):
        """The sharded draw's premise, asserted for every library run."""
        for scenario in oracle.scenarios:
            assert oracle.schedule_injection_ticks(scenario) == \
                oracle.injection_ticks(scenario)

    def _run_shards(self, tmp_path, count, run):
        paths = []
        for index in range(count):
            campaign = Campaign(small_scenarios(),
                                shard_config(index, count),
                                cache_dir=tmp_path / "cache")
            path = tmp_path / f"shard-{index}.jsonl.gz"
            with JsonlRecordSink(path) as sink:
                run(campaign, sink)
            paths.append(path)
        return paths

    def test_two_shard_random_merges_to_unsharded(self, tmp_path, oracle):
        reference = oracle.random_campaign(10, seed=2, pipeline=False)
        paths = self._run_shards(
            tmp_path, 2,
            lambda c, sink: c.random_campaign(10, seed=2,
                                              record_sink=sink))
        merged = merge_record_shards(paths, keep_records=True)
        assert merged.total == reference.total
        assert merged.same_aggregates(reference)
        # The shard streams partition the oracle's record multiset.
        assert sorted(map(repr, strip_wall(merged.records))) == \
            sorted(map(repr, strip_wall(reference.records)))

    def test_two_shard_exhaustive_merges_to_unsharded(self, tmp_path,
                                                      oracle):
        reference = oracle.exhaustive_campaign(
            tick_stride=40, variable_names=["brake"], pipeline=False)
        paths = self._run_shards(
            tmp_path, 2,
            lambda c, sink: c.exhaustive_campaign(
                tick_stride=40, variable_names=["brake"],
                record_sink=sink, workers=2))
        merged = merge_record_shards(paths)
        assert merged.same_aggregates(reference)

    def test_two_shard_architectural_counts_are_global(self, tmp_path,
                                                       oracle):
        reference, ref_outcomes = oracle.architectural_campaign(
            25, seed=3, pipeline=False)
        outcome_sets = []

        def run(campaign, sink):
            _, outcomes = campaign.architectural_campaign(
                25, seed=3, record_sink=sink)
            outcome_sets.append(outcomes)

        paths = self._run_shards(tmp_path, 2, run)
        assert outcome_sets == [ref_outcomes, ref_outcomes]
        merged = merge_record_shards(paths)
        assert merged.same_aggregates(reference)

    def test_two_shard_bayesian_merges_to_unsharded(self, tmp_path,
                                                    oracle):
        reference = oracle.bayesian_campaign(top_k=8, pipeline=False)
        candidate_sets = []

        def run(campaign, sink):
            result = campaign.bayesian_campaign(top_k=8, record_sink=sink)
            candidate_sets.append(candidate_keys(result.candidates))

        paths = self._run_shards(tmp_path, 2, run)
        # Mining is global: every shard ranks the same candidate list.
        assert candidate_sets[0] == candidate_sets[1] == \
            candidate_keys(reference.candidates)
        merged = merge_record_shards(paths)
        assert merged.same_aggregates(reference.summary)

    def test_shard_writes_isolated_caches(self, tmp_path, monkeypatch):
        campaign = Campaign(small_scenarios(), shard_config(1, 2),
                            cache_dir=tmp_path)
        reference = campaign.random_campaign(4, seed=0)
        shard_files = list(tmp_path.glob("golden-*shard1of2*.json.gz"))
        assert len(shard_files) == 1
        # A second shard-1 campaign warm-starts goldens and checkpoint
        # ladders from its own cache files — no re-simulation at all.
        warm = Campaign(small_scenarios(), shard_config(1, 2),
                        cache_dir=tmp_path)

        def no_resimulation(*args, **kwargs):
            raise AssertionError("shard warm start must not re-simulate")

        import repro.core.campaign as campaign_module
        import repro.core.parallel as parallel_module
        monkeypatch.setattr(campaign_module, "run_scenario",
                            no_resimulation)
        monkeypatch.setattr(parallel_module, "run_scenario",
                            no_resimulation)
        warmed = warm.random_campaign(4, seed=0)
        assert strip_wall(warmed.records) == strip_wall(reference.records)


class TestCandidateCacheResilience:
    """A torn or corrupt candidate cache is a miss, not a crash.

    Shards share the candidate cache file (their mining is global), so
    a reader may race a writer; writes are atomic and reads degrade to
    re-mining.
    """

    @pytest.mark.parametrize("pipeline", [True, False])
    def test_corrupt_cache_re_mines(self, tmp_path, pipeline):
        scenarios = [replace(lead_vehicle_cutin(), duration=14.0)]
        cold = Campaign(scenarios, CampaignConfig(),
                        cache_dir=tmp_path / str(pipeline))
        cold_result = cold.bayesian_campaign(top_k=3, pipeline=pipeline)
        cache_files = list((tmp_path / str(pipeline))
                           .glob("candidates-*.json"))
        assert len(cache_files) == 1
        cache_files[0].write_text("{ torn write")
        warm = Campaign(scenarios, CampaignConfig(),
                        cache_dir=tmp_path / str(pipeline))
        warm_result = warm.bayesian_campaign(top_k=3, pipeline=pipeline)
        assert candidate_keys(warm_result.candidates) == \
            candidate_keys(cold_result.candidates)
        # ...and re-mining healed the cache file.
        from repro.core.persistence import try_load_candidates
        assert try_load_candidates(cache_files[0]) is not None


class TestSummaryMerge:
    def records(self, scenario, base):
        return [ExperimentRecord(
                    scenario=scenario, injection_tick=base + 10 * i,
                    variable="brake" if i % 2 else "throttle",
                    value=float(i), duration_ticks=4, seed=0,
                    hazard=Hazard.COLLISION if i == 1 else Hazard.NONE,
                    landed=True, pre_delta_long=5.0, pre_delta_lat=2.0,
                    min_delta_long=float(2 - i),
                    min_delta_lat=math.inf if i == 2 else 1.0,
                    sim_seconds=8.0, wall_seconds=0.25)
                for i in range(3)]

    def test_merge_equals_single_summary(self):
        all_records = self.records("s0", 0) + self.records("s1", 100)
        reference = CampaignSummary(records=all_records)
        shards = [CampaignSummary(records=self.records("s0", 0)),
                  CampaignSummary(records=self.records("s1", 100))]
        merged = CampaignSummary.merge(shards)
        assert merged.same_aggregates(reference)
        assert merged.wall_seconds == pytest.approx(
            reference.wall_seconds)
        assert strip_wall(merged.records) == strip_wall(all_records)

    def test_merge_without_records_stays_bounded(self):
        shards = [CampaignSummary(records=self.records("s0", 0),
                                  keep_records=False),
                  CampaignSummary(records=self.records("s1", 100))]
        merged = CampaignSummary.merge(shards)
        assert merged.records == []
        assert merged.total == 6

    def test_merge_empty(self):
        merged = CampaignSummary.merge([])
        assert merged.total == 0
        assert merged.same_aggregates(CampaignSummary())
