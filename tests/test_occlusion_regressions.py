"""Occlusion-model tests and regression tests for fixed bugs."""

import numpy as np
import pytest

from repro.ads import (ActuationCommand, ControllerConfig, PlannerOutput,
                       SensorSuite, VehicleController)
from repro.sim import NPCVehicle, World, two_lead_reveal


class TestOcclusion:
    def world_with_pair(self, near_gap=40.0, far_gap=90.0, lateral=0.0):
        world = World.on_highway(ego_speed=30.0)
        lane_y = world.road.lane_center(1)
        world.add_npc(NPCVehicle(npc_id=1, x=near_gap, y=lane_y, v=30.0))
        world.add_npc(NPCVehicle(npc_id=2, x=far_gap, y=lane_y + lateral,
                                 v=0.0))
        return world

    def test_far_vehicle_occluded_by_near(self):
        suite = SensorSuite(rng=np.random.default_rng(0))
        bundle = suite.measure(self.world_with_pair())
        xs = sorted(d.x for d in bundle.radar)
        assert len(xs) == 1
        assert xs[0] == pytest.approx(40.0, abs=3.0)

    def test_offset_vehicle_not_occluded(self):
        suite = SensorSuite(rng=np.random.default_rng(0))
        bundle = suite.measure(self.world_with_pair(lateral=3.7))
        assert len(bundle.radar) == 2

    def test_reveal_scenario_hides_second_lead_initially(self):
        world = two_lead_reveal().make_world()
        suite = SensorSuite(rng=np.random.default_rng(1))
        bundle = suite.measure(world)
        # Only TV1 visible at t=0; TV2 is dead ahead behind it.
        assert len(bundle.radar) == 1

    def test_reveal_scenario_exposes_after_lane_change(self):
        world = two_lead_reveal(reveal_time=0.5).make_world()
        suite = SensorSuite(rng=np.random.default_rng(1))
        for _ in range(80):   # 4 s: lane change done
            world.step(0.0, 0.0, 0.0, 0.05)
        bundle = suite.measure(world)
        assert len(bundle.radar) == 2


class TestControllerMemoryIsolation:
    """Regression: in-place corruption of A_t must not poison the
    controller's slew memory (it lives in a separate architectural
    location)."""

    def plan(self):
        return PlannerOutput(target_speed=30.0, throttle=0.1, brake=0.0,
                             steering=0.0, gap=100.0, closing_speed=0.0)

    def test_corrupting_returned_command_leaves_state_clean(self):
        controller = VehicleController(ControllerConfig())
        first = controller.actuate(self.plan(), measured_speed=30.0,
                                   dt=0.05)
        first.steering = 0.55   # injected corruption, in place
        second = controller.actuate(self.plan(), measured_speed=30.0,
                                    dt=0.05)
        # Slew memory was the *uncorrupted* value: no drift toward 0.55.
        assert abs(second.steering) < 0.03

    def test_steering_pulse_recovery(self):
        """A one-frame steering pulse at speed must be recoverable."""
        from repro.core import FaultSpec, Hazard, run_scenario
        from repro.sim import highway_cruise
        fault = FaultSpec("steering", 0.55, start_tick=100,
                          duration_ticks=2)
        result = run_scenario(highway_cruise(), seed=0, faults=[fault],
                              horizon_after_fault=8.0)
        assert result.hazard is Hazard.NONE
