"""Tests for campaign orchestration (random/exhaustive/arch/Bayesian)."""

from dataclasses import replace

import pytest

from repro.core import Campaign, CampaignConfig, FaultSpec, Hazard
from repro.sim import (empty_road, highway_cruise, lead_vehicle_cutin,
                       stalled_vehicle)


@pytest.fixture(scope="module")
def campaign():
    scenarios = [replace(empty_road(), duration=15.0),
                 replace(highway_cruise(), duration=20.0),
                 replace(lead_vehicle_cutin(), duration=15.0),
                 replace(stalled_vehicle(), duration=20.0)]
    return Campaign(scenarios, CampaignConfig())


class TestGolden:
    def test_golden_runs_cached(self, campaign):
        assert campaign.golden_runs() is campaign.golden_runs()

    def test_all_golden_safe(self, campaign):
        for name, run in campaign.golden_runs().items():
            assert run.hazard is Hazard.NONE, (
                f"golden {name} not hazard-free")

    def test_injection_ticks_respect_window(self, campaign):
        scenario = campaign.scenarios[0]
        ticks = campaign.injection_ticks(scenario)
        start = (campaign.config.injection_window_start
                 / campaign.config.ads.control_period)
        assert all(t >= start for t in ticks)
        assert ticks

    def test_injection_ticks_respect_end_margin(self, campaign):
        # Regression: the documented end margin used to be ignored, so
        # faults landed in the last seconds of a scenario and lost their
        # post-fault monitoring horizon.
        dt = campaign.config.ads.control_period
        margin = campaign.config.injection_window_margin
        for scenario in campaign.scenarios:
            end = (scenario.duration - margin) / dt
            ticks = campaign.injection_ticks(scenario)
            assert ticks, scenario.name
            assert all(t <= end for t in ticks), scenario.name

    def test_scene_rows_respect_end_margin(self, campaign):
        dt = campaign.config.ads.control_period
        margin = campaign.config.injection_window_margin
        durations = {s.name: s.duration for s in campaign.scenarios}
        for row in campaign.scene_rows():
            end = (durations[row.scenario] - margin) / dt
            assert row.injection_tick <= end

    def test_injection_ticks_cached(self, campaign):
        scenario = campaign.scenarios[0]
        assert campaign.injection_ticks(scenario) is \
            campaign.injection_ticks(scenario)
        assert campaign.injection_ticks(scenario, stride=3) is \
            campaign.injection_ticks(scenario, stride=3)

    def test_injection_tick_stride(self, campaign):
        scenario = campaign.scenarios[0]
        dense = campaign.injection_ticks(scenario, stride=1)
        sparse = campaign.injection_ticks(scenario, stride=5)
        assert len(sparse) == pytest.approx(len(dense) / 5, abs=1)

    def test_scene_rows_cover_scenarios(self, campaign):
        scenarios = {row.scenario for row in campaign.scene_rows()}
        assert scenarios == {s.name for s in campaign.scenarios}


class TestRunFault:
    def test_record_fields(self, campaign):
        fault = FaultSpec("throttle", 1.0, start_tick=60, duration_ticks=2)
        record = campaign.run_fault("highway_cruise", fault)
        assert record.scenario == "highway_cruise"
        assert record.variable == "throttle"
        assert record.injection_tick == 60
        assert record.wall_seconds > 0
        assert record.landed

    def test_reproducible(self, campaign):
        fault = FaultSpec("brake", 1.0, start_tick=80, duration_ticks=4)
        a = campaign.run_fault("highway_cruise", fault)
        b = campaign.run_fault("highway_cruise", fault)
        assert a.hazard == b.hazard
        assert a.min_delta_long == b.min_delta_long


class TestRandomCampaign:
    def test_size_and_determinism(self, campaign):
        a = campaign.random_campaign(6, seed=9)
        b = campaign.random_campaign(6, seed=9)
        assert a.total == 6
        assert ([r.variable for r in a.records]
                == [r.variable for r in b.records])

    def test_random_hazard_rate_low(self, campaign):
        summary = campaign.random_campaign(25, seed=1)
        # The paper's baseline shape: uniform random rarely hits F_crit.
        assert summary.hazard_rate < 0.3


class TestExhaustiveCampaign:
    def test_grid_size_formula(self, campaign):
        ticks = sum(len(campaign.injection_ticks(s, stride=20))
                    for s in campaign.scenarios)
        assert campaign.grid_size(["throttle"], tick_stride=20) == ticks * 2

    def test_max_experiments_cap(self, campaign):
        summary = campaign.exhaustive_campaign(
            tick_stride=40, variable_names=["throttle", "brake"],
            max_experiments=5)
        assert summary.total == 5

    def test_covers_min_and_max(self, campaign):
        summary = campaign.exhaustive_campaign(
            tick_stride=100, variable_names=["brake"])
        values = {r.value for r in summary.records}
        assert values == {0.0, 1.0}


class TestArchitecturalCampaign:
    def test_outcome_accounting(self, campaign):
        summary, outcomes = campaign.architectural_campaign(40, seed=3)
        assert sum(outcomes.values()) == 40
        # Only silent corruptions become driving experiments.
        assert summary.total == outcomes["sdc"]

    def test_masked_dominates(self, campaign):
        _, outcomes = campaign.architectural_campaign(60, seed=4)
        assert outcomes["masked"] >= max(outcomes["sdc"],
                                         outcomes["crash"])


class TestBayesianCampaign:
    def test_end_to_end(self, campaign):
        result = campaign.bayesian_campaign(top_k=8)
        assert len(result.candidates) <= 8
        assert result.summary.total == len(result.candidates)
        assert result.mining.n_scored > 0
        assert result.total_wall_seconds > 0

    def test_bayesian_beats_random_yield(self, campaign):
        bayesian = campaign.bayesian_campaign(top_k=8)
        random = campaign.random_campaign(8, seed=2)
        assert bayesian.precision >= random.hazard_rate
        assert bayesian.summary.hazards > 0

    def test_candidates_target_tight_scenes(self, campaign):
        result = campaign.bayesian_campaign(top_k=10)
        scenarios = {c.scenario for c in result.candidates}
        # The tight scenarios, not the open road, should dominate.
        assert "empty_road" not in scenarios or len(scenarios) > 1
