"""Tests for road geometry, OBB collision, and safe-distance helpers."""

import numpy as np
import pytest

from repro.sim import (SENSOR_RANGE, Obstacle, Road, ego_collides,
                       lateral_safe_distance, longitudinal_safe_distance,
                       obb_overlap)


class TestRoad:
    def test_width(self):
        assert Road(n_lanes=3, lane_width=3.7).width == pytest.approx(11.1)

    def test_lane_center(self):
        road = Road(n_lanes=3, lane_width=4.0)
        assert road.lane_center(0) == pytest.approx(2.0)
        assert road.lane_center(2) == pytest.approx(10.0)

    def test_lane_center_out_of_range(self):
        with pytest.raises(IndexError):
            Road(n_lanes=2).lane_center(2)

    def test_lane_of(self):
        road = Road(n_lanes=3, lane_width=4.0)
        assert road.lane_of(1.0) == 0
        assert road.lane_of(5.0) == 1
        assert road.lane_of(50.0) == 2  # clipped
        assert road.lane_of(-5.0) == 0  # clipped

    def test_lane_bounds(self):
        road = Road(n_lanes=2, lane_width=4.0)
        assert road.lane_bounds(1) == (4.0, 8.0)

    def test_contains(self):
        road = Road(n_lanes=2, lane_width=4.0)
        assert road.contains(7.9)
        assert not road.contains(8.1)

    def test_lateral_margin_in_lane(self):
        road = Road(n_lanes=3, lane_width=4.0)
        margin = road.lateral_margin_in_lane(6.0, half_width=1.0)
        assert margin == pytest.approx(1.0)

    def test_lateral_margin_negative_when_crossing(self):
        road = Road(n_lanes=3, lane_width=4.0)
        margin = road.lateral_margin_in_lane(7.8, half_width=1.0)
        assert margin < 0.0

    def test_invalid_road(self):
        with pytest.raises(ValueError):
            Road(n_lanes=0)
        with pytest.raises(ValueError):
            Road(lane_width=-1.0)


class TestObbOverlap:
    def square(self, cx, cy, half=1.0, angle=0.0):
        corners = np.array([[half, half], [half, -half],
                            [-half, -half], [-half, half]])
        c, s = np.cos(angle), np.sin(angle)
        return corners @ np.array([[c, -s], [s, c]]).T + np.array([cx, cy])

    def test_overlapping_squares(self):
        assert obb_overlap(self.square(0, 0), self.square(1.5, 0))

    def test_separated_squares(self):
        assert not obb_overlap(self.square(0, 0), self.square(3.0, 0))

    def test_rotated_overlap(self):
        # A rotated square slips between diagonal gaps only when far enough.
        assert obb_overlap(self.square(0, 0),
                           self.square(2.1, 0, angle=np.pi / 4))
        assert not obb_overlap(self.square(0, 0),
                               self.square(2.5, 0, angle=np.pi / 4))

    def test_containment(self):
        assert obb_overlap(self.square(0, 0, half=3.0),
                           self.square(0.5, 0.5, half=0.5))


class TestLongitudinalSafeDistance:
    def test_clear_corridor(self):
        assert longitudinal_safe_distance(0, 5.55, 4.8, 1.9, []) == (
            SENSOR_RANGE)

    def test_lead_in_corridor(self):
        lead = Obstacle(1, x=50.0, y=5.55)
        gap = longitudinal_safe_distance(0.0, 5.55, 4.8, 1.9, [lead])
        assert gap == pytest.approx(50.0 - 4.8)

    def test_vehicle_in_other_lane_ignored(self):
        lead = Obstacle(1, x=50.0, y=9.25)
        assert longitudinal_safe_distance(0.0, 5.55, 4.8, 1.9, [lead]) == (
            SENSOR_RANGE)

    def test_vehicle_behind_ignored(self):
        follower = Obstacle(1, x=-30.0, y=5.55)
        assert longitudinal_safe_distance(0.0, 5.55, 4.8, 1.9,
                                          [follower]) == SENSOR_RANGE

    def test_nearest_of_several(self):
        obstacles = [Obstacle(1, x=80.0, y=5.55), Obstacle(2, x=30.0, y=5.55)]
        gap = longitudinal_safe_distance(0.0, 5.55, 4.8, 1.9, obstacles)
        assert gap == pytest.approx(30.0 - 4.8)

    def test_partial_lateral_overlap_counts(self):
        # A vehicle straddling the lane line still blocks the corridor.
        lead = Obstacle(1, x=40.0, y=5.55 + 1.8)
        gap = longitudinal_safe_distance(0.0, 5.55, 4.8, 1.9, [lead])
        assert gap == pytest.approx(40.0 - 4.8)


class TestLateralSafeDistance:
    def road(self):
        return Road(n_lanes=3, lane_width=3.7)

    def test_centered_in_lane(self):
        road = self.road()
        margin = lateral_safe_distance(0.0, road.lane_center(1), 4.8, 1.9,
                                       [], road)
        assert margin == pytest.approx((3.7 - 1.9) / 2)

    def test_flanking_vehicle_reduces_margin(self):
        road = self.road()
        ego_y = road.lane_center(1)
        # A flanker hugging the shared lane line sits closer than the
        # ego-lane boundary margin of (3.7 - 1.9) / 2 = 0.9 m.
        flanker = Obstacle(1, x=1.0, y=ego_y + 2.2)
        margin = lateral_safe_distance(0.0, ego_y, 4.8, 1.9, [flanker], road)
        assert margin == pytest.approx(2.2 - 1.9)

    def test_distant_flanker_leaves_lane_margin(self):
        road = self.road()
        ego_y = road.lane_center(1)
        flanker = Obstacle(1, x=1.0, y=road.lane_center(2))
        margin = lateral_safe_distance(0.0, ego_y, 4.8, 1.9, [flanker], road)
        # Full-lane separation (1.8 m gap) exceeds the in-lane margin.
        assert margin == pytest.approx((3.7 - 1.9) / 2)

    def test_vehicle_far_ahead_does_not_flank(self):
        road = self.road()
        ego_y = road.lane_center(1)
        leader = Obstacle(1, x=60.0, y=road.lane_center(2))
        margin = lateral_safe_distance(0.0, ego_y, 4.8, 1.9, [leader], road)
        assert margin == pytest.approx((3.7 - 1.9) / 2)


class TestEgoCollides:
    def test_collision_detected(self):
        footprint = np.array([[2.4, 0.95], [2.4, -0.95],
                              [-2.4, -0.95], [-2.4, 0.95]])
        assert ego_collides(footprint, [Obstacle(1, x=4.0, y=0.0)])

    def test_no_collision(self):
        footprint = np.array([[2.4, 0.95], [2.4, -0.95],
                              [-2.4, -0.95], [-2.4, 0.95]])
        assert not ego_collides(footprint, [Obstacle(1, x=10.0, y=0.0)])
