"""Tests for sensor simulation and perception fusion."""

import numpy as np
import pytest

from repro.ads import (Detection, Perception, PerceptionConfig, SensorSuite,
                       SensorSuiteConfig)
from repro.sim import NPCVehicle, World


def world_with_lead(gap=50.0, lead_speed=20.0, ego_speed=25.0):
    world = World.on_highway(ego_speed=ego_speed)
    world.add_npc(NPCVehicle(npc_id=1, x=gap,
                             y=world.road.lane_center(1), v=lead_speed))
    return world


class TestSensorSuite:
    def test_camera_sees_lead(self):
        suite = SensorSuite(rng=np.random.default_rng(0))
        bundle = suite.measure(world_with_lead())
        assert len(bundle.camera) == 1
        assert bundle.camera[0].x == pytest.approx(50.0, abs=2.0)

    def test_radar_measures_speed(self):
        suite = SensorSuite(rng=np.random.default_rng(0))
        bundle = suite.measure(world_with_lead(lead_speed=17.0))
        assert bundle.radar[0].v == pytest.approx(17.0, abs=1.5)

    def test_camera_range_limit(self):
        suite = SensorSuite(rng=np.random.default_rng(0))
        bundle = suite.measure(world_with_lead(gap=200.0))
        assert bundle.camera == []       # beyond 150 m camera range
        assert len(bundle.radar) == 1    # within 220 m radar range

    def test_object_behind_invisible(self):
        world = World.on_highway(ego_speed=25.0)
        world.add_npc(NPCVehicle(npc_id=1, x=-30.0,
                                 y=world.road.lane_center(1), v=20.0))
        suite = SensorSuite(rng=np.random.default_rng(0))
        bundle = suite.measure(world)
        assert bundle.camera == [] and bundle.radar == []

    def test_camera_dropout(self):
        config = SensorSuiteConfig(camera_dropout=0.5)
        suite = SensorSuite(config, rng=np.random.default_rng(1))
        world = world_with_lead()
        seen = sum(bool(suite.measure(world).camera) for _ in range(400))
        assert 130 < seen < 270  # roughly half dropped

    def test_gps_noise_statistics(self):
        suite = SensorSuite(rng=np.random.default_rng(2))
        world = world_with_lead()
        xs = np.array([suite.measure(world).gps.x for _ in range(500)])
        assert xs.mean() == pytest.approx(0.0, abs=0.15)
        assert xs.std() == pytest.approx(suite.config.gps_noise, rel=0.2)

    def test_imu_speed_close_to_truth(self):
        suite = SensorSuite(rng=np.random.default_rng(3))
        bundle = suite.measure(world_with_lead(ego_speed=25.0))
        assert bundle.imu.v == pytest.approx(25.0, abs=0.5)

    def test_lane_offset_reflects_position(self):
        world = World.on_highway(ego_speed=20.0, ego_lane=1)
        world.ego.state = world.ego.state.__class__(
            x=0.0, y=world.road.lane_center(1) + 0.5, v=20.0,
            theta=0.0, phi=0.0)
        suite = SensorSuite(rng=np.random.default_rng(4))
        bundle = suite.measure(world)
        assert bundle.lane_offset == pytest.approx(0.5, abs=0.2)

    def test_acceleration_estimated_from_speed_deltas(self):
        suite = SensorSuite(rng=np.random.default_rng(5))
        world = world_with_lead(ego_speed=20.0)
        suite.measure(world)
        world.ego.state = world.ego.state.with_speed(22.0)
        world.time += 1.0
        bundle = suite.measure(world)
        assert bundle.imu.a == pytest.approx(2.0, abs=0.5)


class TestPerception:
    def test_fuses_matched_pair(self):
        perception = Perception()
        bundle_like = [Detection(50.0, 5.5, 0.0, "camera")]
        radar = [Detection(50.5, 5.6, 18.0, "radar")]
        fused = perception.process(type("B", (), {
            "camera": bundle_like, "radar": radar})())
        assert len(fused) == 1
        assert fused[0].sensor == "fused"
        assert fused[0].v == pytest.approx(18.0)   # radar speed wins
        w = perception.config.camera_weight
        assert fused[0].x == pytest.approx(w * 50.0 + (1 - w) * 50.5)

    def test_unmatched_pass_through(self):
        perception = Perception()
        fused = perception.process(type("B", (), {
            "camera": [Detection(30.0, 5.5)],
            "radar": [Detection(100.0, 5.5, 10.0)]})())
        sensors = sorted(d.sensor for d in fused)
        assert sensors == ["camera", "radar"]

    def test_gate_prevents_bad_association(self):
        config = PerceptionConfig(association_gate=1.0)
        perception = Perception(config)
        fused = perception.process(type("B", (), {
            "camera": [Detection(30.0, 5.5)],
            "radar": [Detection(32.0, 5.5, 10.0)]})())
        assert len(fused) == 2

    def test_each_radar_used_once(self):
        perception = Perception()
        fused = perception.process(type("B", (), {
            "camera": [Detection(50.0, 5.5), Detection(50.2, 5.4)],
            "radar": [Detection(50.1, 5.5, 20.0)]})())
        # One camera fuses with the radar, the other stays camera-only.
        assert sorted(d.sensor for d in fused) == ["camera", "fused"]

    def test_empty_inputs(self):
        perception = Perception()
        assert perception.process(type("B", (), {
            "camera": [], "radar": []})()) == []
