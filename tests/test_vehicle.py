"""Tests for vehicle bodies and actuation."""

import numpy as np
import pytest

from repro.sim import Vehicle, VehicleParameters, VehicleState


def fresh_vehicle(v=20.0, **kwargs):
    return Vehicle(state=VehicleState(v=v), params=VehicleParameters(**kwargs))


class TestAcceleration:
    def test_full_throttle(self):
        vehicle = fresh_vehicle(v=0.0)
        accel = vehicle.acceleration_for(throttle=1.0, brake=0.0)
        assert accel == pytest.approx(vehicle.params.max_acceleration)

    def test_full_brake(self):
        vehicle = fresh_vehicle(v=0.0)
        accel = vehicle.acceleration_for(throttle=0.0, brake=1.0)
        assert accel == pytest.approx(-vehicle.params.max_deceleration)

    def test_pedals_clipped(self):
        vehicle = fresh_vehicle(v=0.0)
        assert (vehicle.acceleration_for(5.0, 0.0)
                == pytest.approx(vehicle.params.max_acceleration))
        assert (vehicle.acceleration_for(-3.0, 0.0) == pytest.approx(0.0))

    def test_drag_grows_with_speed(self):
        vehicle = fresh_vehicle(v=40.0)
        coasting = vehicle.acceleration_for(0.0, 0.0)
        assert coasting < 0.0


class TestApplyActuation:
    def test_throttle_accelerates(self):
        vehicle = fresh_vehicle(v=10.0)
        vehicle.apply_actuation(1.0, 0.0, 0.0, dt=1.0)
        assert vehicle.state.v > 10.0

    def test_brake_decelerates(self):
        vehicle = fresh_vehicle(v=10.0)
        vehicle.apply_actuation(0.0, 1.0, 0.0, dt=1.0)
        assert vehicle.state.v < 10.0

    def test_speed_capped(self):
        vehicle = fresh_vehicle(v=44.9, max_speed=45.0, drag=0.0)
        for _ in range(50):
            vehicle.apply_actuation(1.0, 0.0, 0.0, dt=0.5)
        assert vehicle.state.v <= 45.0

    def test_steering_slews_toward_command(self):
        vehicle = fresh_vehicle(v=20.0)
        vehicle.apply_actuation(0.0, 0.0, 0.3, dt=0.1)
        # Rate limit: at most max_steering_rate * dt in one step.
        assert vehicle.state.phi == pytest.approx(
            vehicle.params.max_steering_rate * 0.1)

    def test_steering_reaches_small_command(self):
        vehicle = fresh_vehicle(v=20.0)
        vehicle.apply_actuation(0.0, 0.0, 0.01, dt=0.1)
        assert vehicle.state.phi == pytest.approx(0.01, abs=1e-6)

    def test_steering_angle_clipped_to_mechanical_range(self):
        vehicle = fresh_vehicle(v=5.0)
        for _ in range(100):
            vehicle.apply_actuation(0.0, 0.0, 2.0, dt=0.1)
        assert vehicle.state.phi <= vehicle.params.max_steering_angle + 1e-9

    def test_steering_turns_the_car(self):
        vehicle = fresh_vehicle(v=20.0)
        for _ in range(30):
            vehicle.apply_actuation(0.3, 0.0, 0.2, dt=0.1)
        assert vehicle.state.theta > 0.0
        assert vehicle.state.y > 0.0


class TestFootprint:
    def test_axis_aligned_footprint(self):
        vehicle = fresh_vehicle(v=0.0)
        corners = vehicle.footprint()
        assert corners.shape == (4, 2)
        assert corners[:, 0].max() == pytest.approx(
            vehicle.params.length / 2)
        assert corners[:, 1].min() == pytest.approx(
            -vehicle.params.width / 2)

    def test_rotated_footprint(self):
        vehicle = Vehicle(state=VehicleState(theta=np.pi / 2))
        corners = vehicle.footprint()
        # Rotated 90 degrees: the long dimension now spans y.
        assert corners[:, 1].max() == pytest.approx(
            vehicle.params.length / 2)

    def test_translated_footprint(self):
        vehicle = Vehicle(state=VehicleState(x=100.0, y=5.0))
        corners = vehicle.footprint()
        assert corners[:, 0].mean() == pytest.approx(100.0)
        assert corners[:, 1].mean() == pytest.approx(5.0)
