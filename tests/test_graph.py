"""Tests for the DAG skeleton."""

import pytest

from repro.bayesnet import DAG, CycleError


def diamond():
    return DAG(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestConstruction:
    def test_nodes_keep_insertion_order(self):
        g = DAG(nodes=["z", "a", "m"])
        assert g.nodes() == ["z", "a", "m"]

    def test_add_edge_creates_nodes(self):
        g = DAG()
        g.add_edge("x", "y")
        assert "x" in g and "y" in g

    def test_self_loop_rejected(self):
        with pytest.raises(CycleError):
            DAG(edges=[("a", "a")])

    def test_cycle_rejected(self):
        g = DAG(edges=[("a", "b"), ("b", "c")])
        with pytest.raises(CycleError):
            g.add_edge("c", "a")

    def test_duplicate_edge_rejected(self):
        g = DAG(edges=[("a", "b")])
        with pytest.raises(ValueError):
            g.add_edge("a", "b")

    def test_add_node_idempotent(self):
        g = DAG()
        g.add_node("a")
        g.add_node("a")
        assert len(g) == 1


class TestQueries:
    def test_parents_and_children(self):
        g = diamond()
        assert g.parents("d") == ["b", "c"]
        assert g.children("a") == ["b", "c"]

    def test_roots_and_leaves(self):
        g = diamond()
        assert g.roots() == ["a"]
        assert g.leaves() == ["d"]

    def test_ancestors(self):
        g = diamond()
        assert g.ancestors("d") == {"a", "b", "c"}
        assert g.ancestors("a") == set()

    def test_descendants(self):
        g = diamond()
        assert g.descendants("a") == {"b", "c", "d"}
        assert g.descendants("d") == set()

    def test_has_path(self):
        g = diamond()
        assert g.has_path("a", "d")
        assert not g.has_path("d", "a")
        assert not g.has_path("b", "c")

    def test_has_path_unknown_nodes(self):
        assert not diamond().has_path("nope", "d")

    def test_topological_order_is_valid(self):
        g = diamond()
        order = g.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for parent, child in g.edges():
            assert position[parent] < position[child]

    def test_topological_order_deterministic(self):
        assert diamond().topological_order() == ["a", "b", "c", "d"]


class TestMutation:
    def test_remove_edge(self):
        g = diamond()
        g.remove_edge("b", "d")
        assert g.parents("d") == ["c"]

    def test_remove_incoming_edges(self):
        g = diamond()
        g.remove_incoming_edges("d")
        assert g.parents("d") == []
        assert g.children("b") == []

    def test_copy_is_independent(self):
        g = diamond()
        clone = g.copy()
        clone.remove_incoming_edges("d")
        assert g.parents("d") == ["b", "c"]
        assert clone.parents("d") == []

    def test_copy_preserves_edges(self):
        g = diamond()
        assert sorted(g.copy().edges()) == sorted(g.edges())
