"""Pool-plumbing coverage: start-method fallback and degenerate pools.

The pipeline driver leans on :mod:`repro.core.parallel`'s quiet
degradation rules — unknown start methods return no context, spawn
pools refuse unpicklable state, single-worker pools collapse to the
serial loop — so each rule is pinned here rather than discovered by a
hanging campaign.
"""

import multiprocessing
from dataclasses import asdict, replace

import pytest

from repro.core import (Campaign, CampaignConfig, FaultSpec,
                        run_experiments)
from repro.core.parallel import (_picklable, _pool_context,
                                 collect_golden_runs)
from repro.sim import Scenario, highway_cruise, lead_vehicle_cutin


def small_scenarios():
    return [replace(highway_cruise(), duration=16.0),
            replace(lead_vehicle_cutin(), duration=14.0)]


def strip_wall(records):
    rows = []
    for record in records:
        row = asdict(record)
        row.pop("wall_seconds")
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def campaign():
    campaign = Campaign(small_scenarios(), CampaignConfig())
    campaign.golden_runs()
    return campaign


@pytest.fixture(scope="module")
def jobs(campaign):
    scenario = campaign.scenarios[0]
    ticks = campaign.injection_ticks(scenario)
    return [(scenario.name, FaultSpec("brake", 0.0, ticks[1], 4)),
            (campaign.scenarios[1].name,
             FaultSpec("throttle", 1.0, ticks[2], 4)),
            (scenario.name, FaultSpec("steering", 0.55, ticks[3], 4))]


class TestPoolContext:
    def test_prefers_fork_else_spawn(self):
        context = _pool_context()
        assert context is not None
        methods = multiprocessing.get_all_start_methods()
        expected = "fork" if "fork" in methods else "spawn"
        assert context.get_start_method() == expected

    def test_explicit_method_honored(self):
        context = _pool_context("spawn")
        assert context is not None
        assert context.get_start_method() == "spawn"

    def test_unknown_method_falls_back_to_serial(self):
        assert _pool_context("no_such_start_method") is None

    def test_unknown_method_still_runs_experiments(self, campaign, jobs):
        reference = run_experiments(campaign.scenarios, campaign.config,
                                    jobs,
                                    checkpoints=campaign.checkpoints)
        fallback = run_experiments(campaign.scenarios, campaign.config,
                                   jobs, workers=2,
                                   checkpoints=campaign.checkpoints,
                                   start_method="no_such_start_method")
        assert strip_wall(fallback) == strip_wall(reference)


class TestPicklability:
    def test_partial_scenarios_pickle(self):
        assert _picklable(small_scenarios(), CampaignConfig())

    def test_closure_scenarios_do_not(self):
        closure = Scenario("closure", lambda: None, duration=10.0)
        assert not _picklable([closure])

    def test_spawn_with_closure_scenarios_falls_back_serial(self):
        """Unpicklable pool state degrades to in-process execution."""
        from repro.sim.world import World
        scenarios = [Scenario("closure_cruise",
                              lambda: World.on_highway(ego_speed=28.0),
                              duration=14.0)]
        campaign = Campaign(scenarios, CampaignConfig())
        tick = campaign.injection_ticks(scenarios[0])[1]
        closure_jobs = [("closure_cruise",
                         FaultSpec("brake", 0.0, tick, 4))]
        reference = run_experiments(scenarios, campaign.config,
                                    closure_jobs)
        spawned = run_experiments(scenarios, campaign.config,
                                  closure_jobs, workers=2,
                                  start_method="spawn")
        assert strip_wall(spawned) == strip_wall(reference)

    def test_spawn_golden_collection_with_closures_falls_back(self):
        from repro.sim.world import World
        scenarios = [Scenario("closure_a",
                              lambda: World.on_highway(ego_speed=26.0),
                              duration=12.0),
                     Scenario("closure_b",
                              lambda: World.on_highway(ego_speed=30.0),
                              duration=12.0)]
        config = CampaignConfig()
        serial = collect_golden_runs(scenarios, config)
        spawned = collect_golden_runs(scenarios, config, workers=2,
                                      start_method="spawn")
        assert list(spawned) == list(serial)
        for name, run in spawned.items():
            assert run.min_delta_long == serial[name].min_delta_long
            assert len(run.trace) == len(serial[name].trace)


class TestSingleWorkerPools:
    """workers=1 (and workers=0) must collapse to the serial loop."""

    @pytest.mark.parametrize("workers", [0, 1])
    def test_run_experiments_degenerate(self, campaign, jobs, workers):
        reference = run_experiments(campaign.scenarios, campaign.config,
                                    jobs,
                                    checkpoints=campaign.checkpoints)
        degenerate = run_experiments(campaign.scenarios, campaign.config,
                                     jobs, workers=workers,
                                     checkpoints=campaign.checkpoints)
        assert strip_wall(degenerate) == strip_wall(reference)

    def test_run_experiments_streaming_degenerate(self, campaign, jobs):
        reference = run_experiments(campaign.scenarios, campaign.config,
                                    jobs,
                                    checkpoints=campaign.checkpoints)
        streamed = []
        returned = run_experiments(campaign.scenarios, campaign.config,
                                   jobs, workers=1,
                                   checkpoints=campaign.checkpoints,
                                   on_record=streamed.append)
        assert returned is None
        assert strip_wall(streamed) == strip_wall(reference)

    def test_collect_golden_runs_single_worker(self, campaign):
        serial = campaign.golden_runs()
        collected = collect_golden_runs(campaign.scenarios,
                                        campaign.config, workers=1)
        assert list(collected) == list(serial)
        for name, run in collected.items():
            reference = serial[name].trace.as_arrays()
            for column, array in run.trace.as_arrays().items():
                assert array.tolist() == reference[column].tolist()

    def test_single_scenario_pool_stays_serial(self, campaign):
        """A one-scenario golden fan-out has nothing to shard."""
        scenario = campaign.scenarios[0]
        collected = collect_golden_runs([scenario], campaign.config,
                                        workers=4)
        reference = campaign.golden_runs()[scenario.name]
        assert collected[scenario.name].min_delta_long == \
            reference.min_delta_long

    def test_pipeline_campaign_single_worker(self, campaign):
        reference = campaign.random_campaign(5, seed=9, pipeline=False)
        single = Campaign(small_scenarios(),
                          CampaignConfig()).random_campaign(
            5, seed=9, workers=1)
        assert strip_wall(single.records) == strip_wall(reference.records)
