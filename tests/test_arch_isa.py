"""Tests for the bit-flip helpers, memory model, ISA, and assembler."""

import math

import numpy as np
import pytest

from repro.arch import (Assembler, HangError, Instruction, Interpreter,
                        MemoryAccessError, MemoryModel, TrapError,
                        bits_to_float, flip_bit, flip_bits, float_to_bits,
                        random_flip)


class TestBitflip:
    def test_round_trip(self):
        for value in [0.0, 1.0, -3.25, 1e300, float("inf")]:
            assert bits_to_float(float_to_bits(value)) == value

    def test_flip_twice_restores(self):
        value = 42.125
        assert flip_bit(flip_bit(value, 17), 17) == value

    def test_sign_bit(self):
        assert flip_bit(5.0, 63) == -5.0

    def test_exponent_bit_large_change(self):
        corrupted = flip_bit(1.0, 62)
        assert abs(corrupted) != 1.0
        assert abs(corrupted) > 1e100 or abs(corrupted) < 1e-100

    def test_low_mantissa_small_change(self):
        corrupted = flip_bit(1.0, 0)
        assert corrupted != 1.0
        assert abs(corrupted - 1.0) < 1e-12

    def test_bad_index(self):
        with pytest.raises(ValueError):
            flip_bit(1.0, 64)
        with pytest.raises(ValueError):
            flip_bits(1.0, [0, -1])

    def test_random_flip_reports_bits(self):
        rng = np.random.default_rng(0)
        corrupted, bits = random_flip(1.0, rng, n_bits=2)
        assert len(bits) == 2
        assert flip_bits(corrupted, bits) == 1.0


class TestMemory:
    def test_load_store(self):
        memory = MemoryModel(8)
        memory.store(3, 7.5)
        assert memory.load(3) == 7.5

    def test_bounds_checked(self):
        memory = MemoryModel(8)
        with pytest.raises(MemoryAccessError):
            memory.load(8)
        with pytest.raises(MemoryAccessError):
            memory.store(-1, 0.0)

    def test_block_io(self):
        memory = MemoryModel(8)
        memory.write_block(2, np.array([1.0, 2.0, 3.0]))
        assert memory.read_block(2, 3).tolist() == [1.0, 2.0, 3.0]

    def test_block_bounds(self):
        memory = MemoryModel(4)
        with pytest.raises(MemoryAccessError):
            memory.write_block(2, np.zeros(3))

    def test_secded_corrects_protected_flip(self):
        memory = MemoryModel(4, protected=True)
        memory.store(0, 1.0)
        landed = memory.inject_flip(0, 62)
        assert not landed
        assert memory.load(0) == 1.0
        assert memory.corrected_flips == 1

    def test_unprotected_flip_lands(self):
        memory = MemoryModel(4, protected=False)
        memory.store(0, 1.0)
        assert memory.inject_flip(0, 63)
        assert memory.load(0) == -1.0

    def test_bad_size(self):
        with pytest.raises(ValueError):
            MemoryModel(0)


class TestInterpreter:
    def run_program(self, build, memory_size=16, budget=100_000):
        asm = Assembler()
        build(asm)
        program = asm.assemble()
        memory = MemoryModel(memory_size)
        interpreter = Interpreter(memory, instruction_budget=budget)
        state = interpreter.run(program)
        return state, memory

    def test_arithmetic(self):
        def build(asm):
            asm.li(1, 6.0)
            asm.li(2, 7.0)
            asm.mul(3, 1, 2)
            asm.li(4, 0.0)
            asm.store(3, 0, 4)
            asm.halt()
        _, memory = self.run_program(build)
        assert memory.load(0) == 42.0

    def test_loop_countdown(self):
        def build(asm):
            asm.li(1, 5.0)     # counter
            asm.li(2, 0.0)     # accumulator
            asm.label("loop")
            asm.addi(2, 2, 2.0)
            asm.addi(1, 1, -1.0)
            asm.jnz(1, "loop")
            asm.li(3, 0.0)
            asm.store(2, 0, 3)
            asm.halt()
        state, memory = self.run_program(build)
        assert memory.load(0) == 10.0
        assert state.dynamic_count > 15

    def test_division_by_zero_is_ieee(self):
        def build(asm):
            asm.li(1, 1.0)
            asm.li(2, 0.0)
            asm.div(3, 1, 2)
            asm.li(4, 0.0)
            asm.store(3, 0, 4)
            asm.halt()
        _, memory = self.run_program(build)
        assert math.isinf(memory.load(0))

    def test_sqrt_negative_is_nan(self):
        def build(asm):
            asm.li(1, -4.0)
            asm.sqrt(2, 1)
            asm.li(3, 0.0)
            asm.store(2, 0, 3)
            asm.halt()
        _, memory = self.run_program(build)
        assert math.isnan(memory.load(0))

    def test_oob_access_traps(self):
        def build(asm):
            asm.li(1, 1e9)
            asm.load(2, 0, 1)
            asm.halt()
        with pytest.raises(MemoryAccessError):
            self.run_program(build)

    def test_budget_hang(self):
        def build(asm):
            asm.li(1, 1.0)
            asm.label("forever")
            asm.jmp("forever")
            asm.halt()
        with pytest.raises(HangError):
            self.run_program(build, budget=1000)

    def test_pc_escape_traps(self):
        program_like = Assembler()
        program_like.li(1, 1.0)   # no HALT
        program = program_like.assemble()
        with pytest.raises(TrapError):
            Interpreter(MemoryModel(4)).run(program)

    def test_min_max_abs(self):
        def build(asm):
            asm.li(1, -3.0)
            asm.li(2, 2.0)
            asm.minimum(3, 1, 2)
            asm.maximum(4, 1, 2)
            asm.absolute(5, 1)
            asm.li(6, 0.0)
            asm.store(3, 0, 6)
            asm.li(6, 1.0)
            asm.store(4, 0, 6)
            asm.li(6, 2.0)
            asm.store(5, 0, 6)
            asm.halt()
        _, memory = self.run_program(build)
        assert memory.read_block(0, 3).tolist() == [-3.0, 2.0, 3.0]


class TestAssembler:
    def test_duplicate_label(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(ValueError):
            asm.label("x")

    def test_undefined_label(self):
        asm = Assembler()
        asm.jmp("nowhere")
        asm.halt()
        with pytest.raises(ValueError):
            asm.assemble()

    def test_illegal_opcode_rejected(self):
        with pytest.raises(TrapError):
            Instruction(op="NOPE")
