"""Equivalence suite: batched mining vs the scalar oracle, and
parallel vs serial campaign validation.

The batched affine engine and the process-pool executor are pure
performance features — these tests pin down that neither changes any
result.
"""

from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.bayesnet import GaussianInference, LinearGaussianBayesianNetwork
from repro.bayesnet.cpd import LinearGaussianCPD
from repro.core import BayesianFaultInjector, Campaign, CampaignConfig
from repro.sim import (adjacent_traffic, braking_lead, empty_road,
                       highway_cruise, lead_vehicle_cutin, stalled_vehicle,
                       two_lead_reveal)


@pytest.fixture(scope="module")
def campaign():
    """The benchmark suite's scenario population (all seven scenarios)."""
    scenarios = [replace(empty_road(), duration=15.0),
                 replace(highway_cruise(), duration=20.0),
                 replace(lead_vehicle_cutin(), duration=15.0),
                 replace(two_lead_reveal(), duration=20.0),
                 replace(braking_lead(), duration=20.0),
                 replace(stalled_vehicle(), duration=20.0),
                 replace(adjacent_traffic(), duration=15.0)]
    return Campaign(scenarios, CampaignConfig())


@pytest.fixture(scope="module")
def injector(campaign):
    return BayesianFaultInjector.train(
        list(campaign.golden_runs().values()),
        safety_config=campaign.config.safety)


class TestAffineMap:
    def network(self):
        network = LinearGaussianBayesianNetwork(edges=[("a", "b"),
                                                       ("b", "c")])
        network.add_cpd(LinearGaussianCPD("a", intercept=1.0, variance=2.0))
        network.add_cpd(LinearGaussianCPD("b", intercept=-0.5, variance=1.0,
                                          parents=["a"], weights=[2.0]))
        network.add_cpd(LinearGaussianCPD("c", intercept=0.0, variance=0.5,
                                          parents=["b"], weights=[-1.0]))
        return network

    def test_affine_map_matches_map_query(self):
        engine = GaussianInference(self.network())
        gain, offset = engine.affine_map(["c"], ["a", "b"])
        for a, b in [(0.0, 0.0), (1.5, -2.0), (-3.0, 4.0)]:
            expected = engine.map_query(["c"], {"a": a, "b": b})["c"]
            got = float((gain @ np.array([a, b]) + offset)[0])
            assert got == pytest.approx(expected, abs=1e-12)

    def test_affine_map_respects_caller_evidence_order(self):
        engine = GaussianInference(self.network())
        gain_ab, offset_ab = engine.affine_map(["c"], ["a", "b"])
        gain_ba, offset_ba = engine.affine_map(["c"], ["b", "a"])
        e = np.array([1.5, -2.0])
        assert float((gain_ab @ e + offset_ab)[0]) == pytest.approx(
            float((gain_ba @ e[::-1] + offset_ba)[0]), abs=1e-12)

    def test_affine_map_rejects_observed_query(self):
        engine = GaussianInference(self.network())
        with pytest.raises(KeyError):
            engine.affine_map(["a"], ["a", "b"])

    def test_condition_gain_cache_reused(self):
        engine = GaussianInference(self.network())
        first = engine.joint.condition({"a": 0.0})
        second = engine.joint.condition({"a": 2.0})
        assert first.variables == second.variables
        plan = engine.joint.conditioning_plan(["a"])
        assert plan is engine.joint.conditioning_plan(["a"])


class TestBatchedMiningEquivalence:
    def test_fcrit_identical_to_scalar_oracle(self, campaign, injector):
        scenes = list(campaign.scene_rows())
        scalar, scalar_report = injector.mine_critical_faults(scenes)
        batched, batched_report = injector.mine_critical_faults_batched(
            scenes)
        assert batched_report.n_scored == scalar_report.n_scored
        assert batched_report.n_scenes == scalar_report.n_scenes
        assert len(batched) == len(scalar)
        for a, b in zip(scalar, batched):
            assert (a.scenario, a.injection_tick, a.variable, a.value) == \
                (b.scenario, b.injection_tick, b.variable, b.value)
            assert b.predicted_delta_long == pytest.approx(
                a.predicted_delta_long, abs=1e-9)
            assert b.predicted_delta_lat == pytest.approx(
                a.predicted_delta_lat, abs=1e-9)
            assert b.observed_delta_long == a.observed_delta_long
            assert b.observed_delta_lat == a.observed_delta_lat

    def test_batched_potentials_match_scalar_per_candidate(self, campaign,
                                                           injector):
        """Spot-check raw potentials, not just the critical subset."""
        scenes = [s for s in campaign.scene_rows() if s.observed_safe][::40]
        assert scenes
        batched, _ = injector.mine_critical_faults_batched(
            scenes, threshold=float("inf"))
        by_key = {(c.scenario, c.injection_tick, c.variable, c.value): c
                  for c in batched}
        from repro.ads.variables import variable_by_name
        for scene in scenes:
            for variable in ("throttle", "tracked_gap", "steering"):
                for value in variable_by_name(variable).corruption_values():
                    value = float(value)
                    potential = injector.predicted_potential(
                        scene, variable, value)
                    candidate = by_key[(scene.scenario,
                                        scene.injection_tick,
                                        variable, value)]
                    assert candidate.predicted_delta_long == pytest.approx(
                        potential.longitudinal, abs=1e-9)
                    assert candidate.predicted_delta_lat == pytest.approx(
                        potential.lateral, abs=1e-9)

    def test_batched_respects_top_k_and_sorting(self, campaign, injector):
        scenes = campaign.scene_rows()
        candidates, _ = injector.mine_critical_faults_batched(scenes,
                                                              top_k=5)
        assert len(candidates) <= 5
        keys = [c.predicted_minimum for c in candidates]
        assert keys == sorted(keys)

    def test_batched_empty_scene_list(self, injector):
        candidates, report = injector.mine_critical_faults_batched([])
        assert candidates == []
        assert report.n_scored == 0


class TestParallelValidation:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        scenarios = [replace(highway_cruise(), duration=20.0),
                     replace(lead_vehicle_cutin(), duration=15.0)]
        return Campaign(scenarios, CampaignConfig())

    @staticmethod
    def strip_wall(records):
        rows = []
        for record in records:
            row = asdict(record)
            row.pop("wall_seconds")  # host timing differs across processes
            rows.append(row)
        return rows

    def test_random_campaign_worker_parity(self, small_campaign):
        serial = small_campaign.random_campaign(6, seed=7, workers=1)
        parallel = small_campaign.random_campaign(6, seed=7, workers=2)
        assert self.strip_wall(parallel.records) == \
            self.strip_wall(serial.records)

    def test_exhaustive_campaign_worker_parity(self, small_campaign):
        serial = small_campaign.exhaustive_campaign(
            tick_stride=30, variable_names=["brake"], workers=1)
        parallel = small_campaign.exhaustive_campaign(
            tick_stride=30, variable_names=["brake"], workers=2)
        assert self.strip_wall(parallel.records) == \
            self.strip_wall(serial.records)

    def test_bayesian_campaign_worker_parity(self, small_campaign):
        serial = small_campaign.bayesian_campaign(top_k=4, workers=1)
        parallel = small_campaign.bayesian_campaign(
            injector=serial.injector, top_k=4, workers=2)
        assert [
            (c.scenario, c.injection_tick, c.variable, c.value)
            for c in parallel.candidates] == [
            (c.scenario, c.injection_tick, c.variable, c.value)
            for c in serial.candidates]
        assert self.strip_wall(parallel.summary.records) == \
            self.strip_wall(serial.summary.records)
