"""Equivalence under chaos: disturbed campaigns equal the serial oracle.

The resilience contract is not "the campaign usually survives" — it is
that a campaign suffering infrastructure faults emits **the same record
stream** as an undisturbed run.  Determinism of the simulator makes
that testable: every experiment re-executed after a worker SIGKILL, a
failed journal write, or a driver kill must reproduce its record
bit-for-bit (wall-clock timing aside), so each test here drives a full
campaign style through :mod:`tests.chaos_harness` disturbances and
compares against the undisturbed serial reference.
"""

import os
import time
from dataclasses import asdict, replace

import pytest

from chaos_harness import (chaos_worker_kills, corrupt_journal,
                           failing_writes, run_driver_killed,
                           service_spec, start_service)
from repro.core import Campaign, CampaignConfig, ResilienceConfig
from repro.core.persistence import merge_record_shards
from repro.sim import highway_cruise, lead_vehicle_cutin, queued_traffic

STYLES = ["random", "exhaustive", "architectural", "bayesian"]


def small_scenarios():
    # Mirrors chaos_harness._DRIVER_TEMPLATE: the subprocess driver and
    # the in-test resume run must agree on cache keys.
    return [replace(highway_cruise(), duration=24.0),
            replace(lead_vehicle_cutin(), duration=16.0),
            replace(queued_traffic(), duration=18.0)]


def strip_wall(records):
    rows = []
    for record in records:
        row = asdict(record)
        row.pop("wall_seconds")   # host timing necessarily differs
        rows.append(row)
    return rows


def run_style(campaign: Campaign, style: str, **kwargs):
    """One scaled-down campaign of the given style; returns its summary."""
    if style == "random":
        return campaign.random_campaign(10, seed=11, **kwargs)
    if style == "exhaustive":
        return campaign.exhaustive_campaign(
            tick_stride=40, variable_names=["brake", "steering"],
            **kwargs)
    if style == "architectural":
        summary, _ = campaign.architectural_campaign(18, seed=3, **kwargs)
        return summary
    return campaign.bayesian_campaign(top_k=6, **kwargs).summary


@pytest.fixture(scope="module")
def oracle():
    """Undisturbed serial references, one per campaign style."""
    campaign = Campaign(small_scenarios(), CampaignConfig())
    campaign.golden_runs()
    return {style: run_style(campaign, style) for style in STYLES}


class TestWorkerKillEquivalence:
    """Workers SIGKILLing themselves mid-job must not change one bit."""

    @pytest.mark.parametrize("style", STYLES)
    def test_style_survives_worker_kills(self, oracle, style):
        config = CampaignConfig(
            resilience=ResilienceConfig(max_attempts=8))
        campaign = Campaign(small_scenarios(), config)
        with chaos_worker_kills(0.15, seed=STYLES.index(style)):
            disturbed = run_style(campaign, style, workers=2)
        assert strip_wall(disturbed.records) == \
            strip_wall(oracle[style].records)
        assert disturbed.same_aggregates(oracle[style])
        assert disturbed.failures == 0


class TestJournalWriteFaults:
    """A dying disk under the journal degrades durability, not results."""

    def test_failed_journal_writes_keep_stream_intact(self, tmp_path,
                                                      oracle):
        config = CampaignConfig(resilience=ResilienceConfig())
        campaign = Campaign(small_scenarios(), config,
                            cache_dir=tmp_path / "cache")
        with failing_writes("journal-") as state:
            summary = run_style(campaign, "random")
        assert state["failed"] > 0          # the fault actually fired
        assert strip_wall(summary.records) == \
            strip_wall(oracle["random"].records)
        journal_dirs = list((tmp_path / "cache").glob("journal-*"))
        assert all(not list(d.glob("seg-*.jsonl")) for d in journal_dirs)

        # Nothing became durable, so resume re-executes everything —
        # the safe direction — and still equals the oracle.
        resumed = Campaign(
            small_scenarios(),
            CampaignConfig(resilience=ResilienceConfig(resume=True)),
            cache_dir=tmp_path / "cache")
        again = run_style(resumed, "random")
        assert resumed._last_journal.hits == 0
        assert resumed._last_journal.appended == len(summary.records)
        assert strip_wall(again.records) == \
            strip_wall(oracle["random"].records)

    def test_corrupt_journal_segments_reexecute(self, tmp_path, oracle):
        cache = tmp_path / "cache"
        first = Campaign(small_scenarios(),
                         CampaignConfig(resilience=ResilienceConfig()),
                         cache_dir=cache)
        run_style(first, "random")
        journal_dir = next(cache.glob("journal-*"))
        assert corrupt_journal(journal_dir) == 2

        resumed = Campaign(
            small_scenarios(),
            CampaignConfig(resilience=ResilienceConfig(resume=True)),
            cache_dir=cache)
        summary = run_style(resumed, "random")
        journal = resumed._last_journal
        total = len(oracle["random"].records)
        assert journal.hits < total          # damaged entries re-ran
        assert journal.hits + journal.appended == total
        assert strip_wall(summary.records) == \
            strip_wall(oracle["random"].records)


class TestDriverKillResume:
    """SIGKILL the whole driver; --resume must re-execute nothing done."""

    def test_sigkill_resume_skips_journaled_experiments(self, tmp_path,
                                                        oracle):
        cache = tmp_path / "cache"
        code = run_driver_killed(
            cache, "random_campaign(10, seed=11, on_progress=kill_after)",
            kill_after=4)
        assert code == -9                   # died by its own SIGKILL

        resumed = Campaign(
            small_scenarios(),
            CampaignConfig(resilience=ResilienceConfig(resume=True)),
            cache_dir=cache)
        summary = resumed.random_campaign(10, seed=11)
        journal = resumed._last_journal
        # Zero re-execution of completed experiments: every journaled
        # record was claimed, the rest were executed exactly once.
        assert journal.hits == journal.loaded_count
        assert journal.hits >= 4
        assert journal.hits + journal.appended == 10
        # The merged stream (journal-replayed prefix + fresh suffix) is
        # bit-for-bit the uninterrupted run, original timings included
        # for the replayed records.
        assert strip_wall(summary.records) == \
            strip_wall(oracle["random"].records)


class TestServiceChaos:
    """Kill the campaign *service host*; restart must resume exactly.

    These drive a real ``repro serve`` subprocess — the same binary an
    operator runs — through the chaos suite's standard small campaign,
    using the stdlib client.
    """

    @staticmethod
    def _records_from_ndjson(raw: bytes):
        from repro.core.persistence import iter_records_jsonl
        import tempfile
        with tempfile.NamedTemporaryFile(suffix=".jsonl") as handle:
            handle.write(raw)
            handle.flush()
            return list(iter_records_jsonl(handle.name))

    def test_sigkill_server_restart_resumes_bit_identical(self, tmp_path,
                                                          oracle):
        from repro.service.client import ServiceClient
        cache = tmp_path / "cache"
        proc, port = start_service(cache)
        try:
            client = ServiceClient(port=port)
            job = client.submit(service_spec())
            # Follow the live NDJSON stream until four experiments have
            # validated, then SIGKILL the server mid-campaign.
            for event in client.events(job["id"]):
                if (event.get("type") == "progress"
                        and event.get("stage") == "validated"
                        and event["done"] >= 4):
                    break
            runner_pid = client.job(job["id"])["pid"]
        finally:
            proc.kill()
            proc.wait(timeout=30)
        # The orphaned runner notices its parent is gone (broken event
        # pipe) and exits rather than finishing unsupervised.
        deadline = time.monotonic() + 60
        while os.path.exists(f"/proc/{runner_pid}") \
                and time.monotonic() < deadline:
            time.sleep(0.1)
        assert not os.path.exists(f"/proc/{runner_pid}")

        proc2, port2 = start_service(cache)
        try:
            client = ServiceClient(port=port2)
            recovered = client.job(job["id"])
            assert recovered["resume"] is True
            final = client.wait(job["id"], timeout=420)
            assert final["state"] == "completed"
            # Zero re-execution: the resumed attempt claimed at least
            # the four validated experiments from the journal.
            journal = final["summary"]["journal"]
            assert journal["hits"] >= 4
            assert journal["hits"] + journal["appended"] == 10
            records = self._records_from_ndjson(
                client.records(job["id"]))
        finally:
            proc2.terminate()
            proc2.wait(timeout=60)
        assert strip_wall(records) == strip_wall(oracle["random"].records)

    def test_sigterm_drain_restart_completes_bit_identical(
            self, tmp_path, oracle):
        """Graceful drain journals the interrupted job as queued +
        resume; the restarted server must actually *run* it to
        completion (regression: drained jobs were recovered 'queued'
        but never pushed back onto the scheduler queues)."""
        from repro.service.client import ServiceClient
        cache = tmp_path / "cache"
        proc, port = start_service(cache)
        try:
            client = ServiceClient(port=port)
            job = client.submit(service_spec())
            for event in client.events(job["id"]):
                if (event.get("type") == "progress"
                        and event.get("stage") == "validated"
                        and event["done"] >= 2):
                    break
            proc.terminate()              # graceful drain, not a crash
            proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        proc2, port2 = start_service(cache)
        try:
            client = ServiceClient(port=port2)
            assert client.job(job["id"])["resume"] is True
            final = client.wait(job["id"], timeout=420)
            assert final["state"] == "completed"
            journal = final["summary"]["journal"]
            assert journal["hits"] >= 2       # drained work not redone
            assert journal["hits"] + journal["appended"] == 10
            records = self._records_from_ndjson(
                client.records(job["id"]))
        finally:
            proc2.terminate()
            proc2.wait(timeout=60)
        assert strip_wall(records) == strip_wall(oracle["random"].records)

    def test_duplicate_idempotent_submission_executes_once(self, tmp_path,
                                                           oracle):
        from repro.service.client import ServiceClient
        cache = tmp_path / "cache"
        proc, port = start_service(cache)
        try:
            client = ServiceClient(port=port)
            first = client.submit(service_spec(),
                                  idempotency_key="chaos-dup")
            for _ in range(5):
                again = client.submit(service_spec(),
                                      idempotency_key="chaos-dup")
                assert again["id"] == first["id"]
            final = client.wait(first["id"], timeout=420)
            assert final["state"] == "completed"
            assert len(client.jobs()) == 1
            # One campaign execution: all ten experiments ran fresh,
            # none were journal replays of a duplicate run.
            assert final["summary"]["journal"] == {"hits": 0,
                                                  "appended": 10}
            records = self._records_from_ndjson(
                client.records(first["id"]))
            # Resubmitting after completion still returns the same job.
            done_again = client.submit(service_spec(),
                                       idempotency_key="chaos-dup")
            assert done_again["id"] == first["id"]
            assert done_again["state"] == "completed"
        finally:
            proc.terminate()
            proc.wait(timeout=60)
        assert strip_wall(records) == strip_wall(oracle["random"].records)


class TestLeaseEquivalence:
    """Lease-claimed multi-host campaigns equal the single-host run."""

    def lease_config(self, ttl: float = 30.0) -> CampaignConfig:
        return CampaignConfig(resilience=ResilienceConfig(
            lease_mode=True, lease_ttl=ttl, lease_poll=0.05))

    def test_single_host_lease_run_matches_oracle(self, tmp_path,
                                                  oracle):
        cache = tmp_path / "cache"
        campaign = Campaign(small_scenarios(), self.lease_config(),
                            cache_dir=cache)
        summary = campaign.random_campaign(10, seed=11)
        assert summary.same_aggregates(oracle["random"])

        board_files = sorted(cache.glob("leases-*/records-*.jsonl"))
        assert len(board_files) == len(small_scenarios())
        merged = merge_record_shards(board_files, keep_records=True)
        assert merged.same_aggregates(oracle["random"])
        assert sorted(map(repr, strip_wall(merged.records))) == \
            sorted(map(repr, strip_wall(oracle["random"].records)))

    def test_lease_requires_cache_dir(self):
        campaign = Campaign(small_scenarios(), self.lease_config())
        with pytest.raises(ValueError, match="cache_dir"):
            campaign.random_campaign(4, seed=1)

    def test_second_host_finishes_after_first_is_killed(self, tmp_path,
                                                        oracle):
        cache = tmp_path / "cache"
        code = run_driver_killed(
            cache, "random_campaign(10, seed=11, on_progress=kill_after)",
            kill_after=2,
            resilience_kwargs="lease_mode=True, lease_ttl=1.5, "
                              "lease_poll=0.05")
        assert code == -9
        # Host A died holding its leases; host B waits out the TTL,
        # steals the stale claims, and completes the full scenario set.
        survivor = Campaign(small_scenarios(), self.lease_config(ttl=30.0),
                            cache_dir=cache)
        summary = survivor.random_campaign(10, seed=11)
        assert summary.same_aggregates(oracle["random"])
        board_files = sorted(cache.glob("leases-*/records-*.jsonl"))
        assert len(board_files) == len(small_scenarios())
        merged = merge_record_shards(board_files, keep_records=True)
        assert merged.same_aggregates(oracle["random"])
