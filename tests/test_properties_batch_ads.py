"""Property-based tests (hypothesis): batched ADS == scalar pipeline.

The fused ADS engine's contract is *bitwise* equality with the scalar
:class:`~repro.ads.runtime.ADSPipeline` oracle, lane for lane, under
any lane count, seed, fault mix, lane order, peel/retirement pattern,
or snapshot/restore cut.  These properties fuzz that contract at the
:func:`~repro.core.simulate.run_experiments_batched` driver level and
at the :class:`~repro.ads.batch.BatchADSState` engine level (the
campaign-level equivalence suite covers the full orchestration stack).
"""

from dataclasses import asdict, replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ads.batch import BatchADSState, can_fuse
from repro.ads.runtime import ADSConfig, ADSPipeline
from repro.core.interface_faults import CHANNELS, INTERFACE_KINDS
from repro.core.simulate import (FaultSpec, run_experiments_batched,
                                 run_scenario)
from repro.sim import BatchWorldState, highway_cruise

SCENARIO = replace(highway_cruise(), duration=10.0)
HORIZON = 3.0
CONFIG = ADSConfig()
DT = CONFIG.control_period

#: One registry variable per pipeline stage, so the fused fault paths
#: (real setters for sensing/perception/world-model, masked column
#: writes for planning/actuation) all get fuzzed.
VARIABLES = ["imu_speed", "gps_y", "detection_x", "tracked_gap",
             "planned_speed", "raw_throttle", "brake", "steering"]

value_faults = st.builds(
    FaultSpec,
    variable=st.sampled_from(VARIABLES),
    value=st.sampled_from([0.0, 0.4, 5.0, 40.0, 120.0]),
    start_tick=st.integers(10, 80),
    duration_ticks=st.integers(1, 4))

interface_faults = st.builds(
    lambda kind, channel, tick, duration: FaultSpec(
        variable=f"{kind}@{channel}", value=2.0, start_tick=tick,
        duration_ticks=duration, kind=kind, channel=channel),
    st.sampled_from(INTERFACE_KINDS),
    st.sampled_from(CHANNELS),
    st.integers(10, 80),
    st.integers(1, 4))

#: Per-lane fault lists: at least one fault per lane keeps the
#: post-fault horizon bounded, so every property run stays short.
fused_lane = st.lists(value_faults, min_size=1, max_size=2)
peeled_lane = st.lists(interface_faults, min_size=1, max_size=2)
mixed_lane = st.one_of(fused_lane, peeled_lane,
                       st.tuples(value_faults, interface_faults)
                       .map(list))
fault_lists = st.lists(mixed_lane, min_size=1, max_size=5)
seeds = st.integers(0, 3)
batch_sizes = st.integers(1, 4)


def _strip(result):
    row = asdict(result)
    row.pop("wall_seconds")     # host timing necessarily differs
    row.pop("trace")            # None with record_trace=False
    row.pop("checkpoints")
    return row


def _run_batched(lists, seed, batch_size):
    return [_strip(result) for result in run_experiments_batched(
        SCENARIO, lists, seed=seed, horizon_after_fault=HORIZON,
        batch_size=batch_size, record_trace=False)]


def _run_scalar(lists, seed):
    return [_strip(run_scenario(SCENARIO, seed=seed, faults=faults,
                                horizon_after_fault=HORIZON,
                                record_trace=False))
            for faults in lists]


class TestLockstepEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(fault_lists, seeds, batch_sizes)
    def test_lanes_match_scalar_pipelines_bitwise(self, lists, seed,
                                                  batch_size):
        assert _run_batched(lists, seed, batch_size) \
            == _run_scalar(lists, seed)

    @settings(max_examples=8, deadline=None)
    @given(fault_lists, seeds, batch_sizes, st.randoms())
    def test_lane_order_is_irrelevant(self, lists, seed, batch_size,
                                      rng):
        order = list(range(len(lists)))
        rng.shuffle(order)
        straight = _run_batched(lists, seed, batch_size)
        shuffled = _run_batched([lists[i] for i in order], seed,
                                batch_size)
        for lane, source in enumerate(order):
            assert shuffled[lane] == straight[source]


class TestPeelAndRetirement:
    @settings(max_examples=8, deadline=None)
    @given(st.lists(fused_lane, min_size=1, max_size=3),
           st.lists(peeled_lane, min_size=1, max_size=2),
           seeds, st.randoms())
    def test_peeled_lanes_do_not_perturb_fused_survivors(self, fused,
                                                         peeled, seed,
                                                         rng):
        """Interleaving scalar-peeled lanes (interface faults) into the
        batch leaves every fused lane's record bit-for-bit unchanged —
        as does the staggered retirement their horizons cause."""
        lists = [("fused", i, faults) for i, faults in enumerate(fused)] \
            + [("peel", i, faults) for i, faults in enumerate(peeled)]
        rng.shuffle(lists)
        alone = _run_batched(fused, seed, batch_size=len(lists))
        mixed = _run_batched([faults for _, _, faults in lists], seed,
                             batch_size=len(lists))
        for lane, (kind, i, _) in enumerate(lists):
            if kind == "fused":
                assert mixed[lane] == alone[i]


def _arm(pipeline, faults):
    for fault in faults:
        pipeline.arm_fault(fault.variable, fault.value, fault.start_tick,
                           fault.duration_ticks)


def _drive_batched(n_lanes, seed, n_ticks, faults):
    """A minimal fused-batch drive (no safety/recording machinery)."""
    worlds = [SCENARIO.make_world() for _ in range(n_lanes)]
    batch = BatchWorldState(worlds)
    ads = BatchADSState(batch, CONFIG)
    for slot in range(n_lanes):
        pipeline = ADSPipeline(CONFIG, seed=seed)
        if slot == 0:
            _arm(pipeline, faults)
        assert can_fuse(pipeline)
        ads.attach(slot, pipeline)
    for _ in range(n_ticks):
        ads.tick_all()
        batch.step(DT)
    return batch, ads


def _drive_scalar(seed, n_ticks, faults):
    world = SCENARIO.make_world()
    pipeline = ADSPipeline(CONFIG, seed=seed)
    _arm(pipeline, faults)
    for _ in range(n_ticks):
        command = pipeline.tick(world)
        world.step(command.throttle, command.brake, command.steering, DT)
    return world, pipeline


def _continue_scalar(world, pipeline, n_ticks):
    commands = []
    for _ in range(n_ticks):
        command = pipeline.tick(world)
        world.step(command.throttle, command.brake, command.steering, DT)
        commands.append((command.throttle, command.brake,
                         command.steering))
    state = world.ego.state
    return commands, (state.x, state.y, state.v, state.theta, state.phi)


class TestSnapshotRestore:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 4), seeds, st.integers(1, 40),
           st.integers(1, 20), st.lists(value_faults, max_size=2),
           st.data())
    def test_fused_lane_snapshot_replays_bitwise(self, n_lanes, seed,
                                                 prefix, suffix, faults,
                                                 data):
        """A fused lane cut mid-batch by :meth:`snapshot_lane` restores
        into a *scalar* pipeline that continues exactly like the scalar
        twin — and the snapshot's plain fields match the twin's own
        snapshot structurally."""
        slot = data.draw(st.integers(0, n_lanes - 1))
        batch, ads = _drive_batched(n_lanes, seed, prefix,
                                    faults if slot == 0 else [])
        world, pipeline = _drive_scalar(seed, prefix,
                                        faults if slot == 0 else [])
        fused_snap = ads.snapshot_lane(slot)
        scalar_snap = pipeline.snapshot()

        assert fused_snap.tick_index == scalar_snap.tick_index
        assert fused_snap.command == scalar_snap.command
        assert fused_snap.controller == scalar_snap.controller
        assert fused_snap.sensors == scalar_snap.sensors
        assert fused_snap.plan == scalar_snap.plan
        assert fused_snap.faults == scalar_snap.faults
        assert fused_snap.degraded_ticks == scalar_snap.degraded_ticks
        for mine, twin in ((fused_snap.localizer.mean,
                            scalar_snap.localizer.mean),
                           (fused_snap.localizer.covariance,
                            scalar_snap.localizer.covariance)):
            if twin is None:
                assert mine is None
            else:
                assert np.array_equal(np.asarray(mine).ravel(),
                                      np.asarray(twin).ravel())

        restored = ADSPipeline(CONFIG, seed=seed)
        restored.restore(fused_snap)
        batch.scatter([slot])
        assert _continue_scalar(batch.worlds[slot], restored, suffix) \
            == _continue_scalar(world, pipeline, suffix)
