"""Tests for the IDM planner and PID/slew controller."""

import pytest

from repro.ads import (ActuationCommand, ControllerConfig, EgoEstimate,
                       PIDController, Planner, PlannerConfig, PlannerOutput,
                       TrackedObject, VehicleController, WorldModel)


def model_with_lead(gap=None, lead_speed=20.0, ego_speed=25.0,
                    lane_offset=0.0, lane_heading=0.0):
    tracks = []
    if gap is not None:
        tracks = [TrackedObject(track_id=1, x=gap + 4.8, y=5.55,
                                vx=lead_speed, vy=0.0, age=5)]
    ego = EgoEstimate(x=0.0, y=5.55, v=ego_speed, theta=0.0)
    return WorldModel(time=0.0, ego=ego, tracks=tracks,
                      lane_offset=lane_offset, lane_heading=lane_heading)


class TestPlanner:
    def test_free_road_accelerates_toward_cruise(self):
        planner = Planner(PlannerConfig(cruise_speed=31.0))
        plan = planner.plan(model_with_lead(ego_speed=20.0), dt=0.1)
        assert plan.throttle > 0.0
        assert plan.brake == 0.0
        assert plan.target_speed > 20.0

    def test_at_cruise_speed_no_hard_accel(self):
        planner = Planner(PlannerConfig(cruise_speed=31.0))
        plan = planner.plan(model_with_lead(ego_speed=31.0), dt=0.1)
        assert plan.throttle == pytest.approx(0.0, abs=0.05)

    def test_close_gap_brakes(self):
        planner = Planner()
        plan = planner.plan(model_with_lead(gap=8.0, lead_speed=20.0,
                                            ego_speed=25.0), dt=0.1)
        assert plan.brake > 0.0
        assert plan.throttle == 0.0

    def test_low_ttc_full_brake(self):
        planner = Planner()
        plan = planner.plan(model_with_lead(gap=15.0, lead_speed=5.0,
                                            ego_speed=30.0), dt=0.1)
        assert plan.brake == pytest.approx(1.0)

    def test_comfortable_following_is_gentle(self):
        planner = Planner()
        plan = planner.plan(model_with_lead(gap=60.0, lead_speed=25.0,
                                            ego_speed=25.0), dt=0.1)
        assert plan.brake < 0.2
        # Comfort acceleration cap maps to modest throttle.
        assert plan.throttle <= (planner.config.comfort_accel
                                 / planner.config.vehicle_max_accel + 1e-9)

    def test_lane_offset_steers_back(self):
        planner = Planner()
        plan = planner.plan(model_with_lead(lane_offset=0.5), dt=0.1)
        assert plan.steering < 0.0
        plan = planner.plan(model_with_lead(lane_offset=-0.5), dt=0.1)
        assert plan.steering > 0.0

    def test_heading_error_steers_back(self):
        planner = Planner()
        plan = planner.plan(model_with_lead(lane_heading=0.05), dt=0.1)
        assert plan.steering < 0.0

    def test_gap_and_closing_reported(self):
        planner = Planner()
        plan = planner.plan(model_with_lead(gap=40.0, lead_speed=22.0,
                                            ego_speed=25.0), dt=0.1)
        assert plan.gap == pytest.approx(40.0, abs=0.1)
        assert plan.closing_speed == pytest.approx(3.0)

    def test_empty_road_gap_is_sensor_range(self):
        planner = Planner()
        plan = planner.plan(model_with_lead(), dt=0.1)
        assert plan.gap == pytest.approx(250.0)


class TestPID:
    def test_proportional(self):
        pid = PIDController(kp=2.0)
        assert pid.step(0.3, dt=0.1) == pytest.approx(0.6)

    def test_integral_accumulates(self):
        pid = PIDController(kp=0.0, ki=1.0)
        pid.step(1.0, dt=0.5)
        assert pid.step(1.0, dt=0.5) == pytest.approx(1.0)

    def test_derivative(self):
        pid = PIDController(kp=0.0, kd=1.0, output_low=-10.0,
                            output_high=10.0)
        pid.step(0.0, dt=0.1)
        assert pid.step(0.2, dt=0.1) == pytest.approx(2.0)

    def test_output_clamped(self):
        pid = PIDController(kp=100.0, output_low=-1.0, output_high=1.0)
        assert pid.step(10.0, dt=0.1) == 1.0

    def test_anti_windup(self):
        pid = PIDController(kp=0.0, ki=10.0, output_high=1.0)
        for _ in range(100):
            pid.step(5.0, dt=0.1)   # saturated: integral must not grow
        pid_output_after_reversal = pid.step(-0.05, dt=0.1)
        assert pid_output_after_reversal < 1.0

    def test_reset(self):
        pid = PIDController(kp=0.0, ki=1.0)
        pid.step(1.0, dt=1.0)
        pid.reset()
        assert pid.step(0.0, dt=1.0) == 0.0

    def test_bad_dt(self):
        with pytest.raises(ValueError):
            PIDController(kp=1.0).step(1.0, dt=0.0)


class TestVehicleController:
    def plan(self, throttle=0.5, brake=0.0, steering=0.0, target=25.0):
        return PlannerOutput(target_speed=target, throttle=throttle,
                             brake=brake, steering=steering, gap=100.0,
                             closing_speed=0.0)

    def test_slew_limits_pedal_step(self):
        controller = VehicleController(ControllerConfig(
            pedal_slew_rate=1.0))
        command = controller.actuate(self.plan(throttle=1.0, target=40.0),
                                     measured_speed=20.0, dt=0.05)
        assert command.throttle <= 1.0 * 0.05 + 1e-9

    def test_steering_slew(self):
        controller = VehicleController(ControllerConfig(
            steering_slew_rate=0.5))
        command = controller.actuate(self.plan(steering=0.5),
                                     measured_speed=25.0, dt=0.05)
        assert command.steering == pytest.approx(0.025)

    def test_disabled_passthrough(self):
        controller = VehicleController(ControllerConfig(enabled=False))
        command = controller.actuate(self.plan(throttle=0.9, steering=0.3),
                                     measured_speed=0.0, dt=0.05)
        assert command.throttle == pytest.approx(0.9)
        assert command.steering == pytest.approx(0.3)

    def test_speed_error_raises_throttle(self):
        controller = VehicleController()
        slow = None
        for _ in range(40):
            slow = controller.actuate(self.plan(throttle=0.2, target=30.0),
                                      measured_speed=20.0, dt=0.05)
        controller.reset()
        fast = None
        for _ in range(40):
            fast = controller.actuate(self.plan(throttle=0.2, target=30.0),
                                      measured_speed=29.5, dt=0.05)
        assert slow.throttle > fast.throttle

    def test_brake_commands_map_to_brake_pedal(self):
        controller = VehicleController()
        command = None
        for _ in range(40):
            command = controller.actuate(
                self.plan(throttle=0.0, brake=0.8, target=0.0),
                measured_speed=20.0, dt=0.05)
        assert command.brake > 0.5
        assert command.throttle == 0.0

    def test_clipping(self):
        command = ActuationCommand(2.0, -1.0, 3.0).clipped()
        assert command.throttle == 1.0
        assert command.brake == 0.0
        assert command.steering == 0.55
