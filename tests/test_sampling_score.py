"""Tests for likelihood weighting and model scoring."""

import numpy as np
import pytest

from repro.bayesnet import (DAG, DiscreteBayesianNetwork, GaussianInference,
                            LinearGaussianBayesianNetwork, LinearGaussianCPD,
                            TabularCPD, VariableElimination, bic_score,
                            empty_dag, fit_and_score,
                            gaussian_likelihood_weighting,
                            gaussian_log_likelihood, likelihood_weighting,
                            n_parameters)


def sprinkler():
    net = DiscreteBayesianNetwork(edges=[("rain", "sprinkler"),
                                         ("rain", "grass"),
                                         ("sprinkler", "grass")])
    net.add_cpd(TabularCPD("rain", 2, [[0.8], [0.2]]))
    net.add_cpd(TabularCPD("sprinkler", 2, [[0.6, 0.99], [0.4, 0.01]],
                           parents=["rain"], parent_cards=[2]))
    net.add_cpd(TabularCPD("grass", 2,
                           [[1.0, 0.1, 0.2, 0.01],
                            [0.0, 0.9, 0.8, 0.99]],
                           parents=["rain", "sprinkler"],
                           parent_cards=[2, 2]))
    return net


def chain_lg():
    net = LinearGaussianBayesianNetwork(edges=[("x", "y")])
    net.add_cpd(LinearGaussianCPD("x", 1.0, 1.0))
    net.add_cpd(LinearGaussianCPD("y", 0.0, 0.5, parents=["x"],
                                  weights=[2.0]))
    return net


class TestLikelihoodWeighting:
    def test_matches_exact_inference(self):
        net = sprinkler()
        exact = VariableElimination(net).marginal(
            "rain", evidence={"grass": 1}).values
        rng = np.random.default_rng(0)
        approx = likelihood_weighting(net, "rain", {"grass": 1},
                                      n_samples=20_000, rng=rng)
        assert np.allclose(approx, exact, atol=0.02)

    def test_no_evidence_recovers_prior(self):
        net = sprinkler()
        rng = np.random.default_rng(1)
        approx = likelihood_weighting(net, "rain", {}, 10_000, rng)
        assert approx[1] == pytest.approx(0.2, abs=0.02)

    def test_impossible_evidence_raises(self):
        net = DiscreteBayesianNetwork()
        net.add_cpd(TabularCPD("a", 2, [[1.0], [0.0]]))
        rng = np.random.default_rng(2)
        with pytest.raises(ZeroDivisionError):
            likelihood_weighting(net, "a", {"a": 1}, 100, rng)

    def test_gaussian_matches_exact(self):
        net = chain_lg()
        engine = GaussianInference(net)
        exact = engine.posterior(["x"], {"y": 4.0})
        rng = np.random.default_rng(3)
        mean, variance = gaussian_likelihood_weighting(
            net, "x", {"y": 4.0}, n_samples=30_000, rng=rng)
        assert mean == pytest.approx(exact.mean_of("x"), abs=0.05)
        assert variance == pytest.approx(exact.variance_of("x"), rel=0.2)


class TestScoring:
    def generate_data(self, n=2000, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, n)
        y = 2.0 * x + rng.normal(0, 0.5, n)
        z = rng.normal(5, 2, n)   # independent
        return {"x": x, "y": y, "z": z}

    def test_log_likelihood_prefers_true_model(self):
        data = self.generate_data()
        true_bic = fit_and_score(DAG(edges=[("x", "y")],
                                     nodes=["x", "y", "z"]), data)
        empty_bic = fit_and_score(empty_dag(["x", "y", "z"]), data)
        assert true_bic > empty_bic

    def test_bic_penalizes_spurious_edges(self):
        data = self.generate_data()
        true_bic = fit_and_score(DAG(edges=[("x", "y")],
                                    nodes=["x", "y", "z"]), data)
        dense = DAG(edges=[("x", "y"), ("x", "z"), ("y", "z")])
        dense_bic = fit_and_score(dense, data)
        assert true_bic >= dense_bic - 1.0  # spurious edges buy nothing

    def test_parameter_count(self):
        net = chain_lg()
        # x: intercept+variance = 2 ; y: weight+intercept+variance = 3
        assert n_parameters(net) == 5

    def test_ll_decreases_with_wrong_parameters(self):
        data = self.generate_data()
        good = chain_lg()
        bad = LinearGaussianBayesianNetwork(edges=[("x", "y")])
        bad.add_cpd(LinearGaussianCPD("x", 1.0, 1.0))
        bad.add_cpd(LinearGaussianCPD("y", 0.0, 0.5, parents=["x"],
                                      weights=[-2.0]))  # wrong sign
        subset = {"x": data["x"], "y": data["y"]}
        assert (gaussian_log_likelihood(good, subset)
                > gaussian_log_likelihood(bad, subset))

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            bic_score(chain_lg(), {"x": np.array([]), "y": np.array([])})

    def test_ads_template_beats_independence(self):
        """The architecture-derived 3-TBN captures real structure."""
        from repro.core import BN_VARIABLES, Campaign, ads_dbn_template
        campaign = Campaign()
        golden = campaign.golden_runs()
        template = ads_dbn_template()
        traces = []
        for run in golden.values():
            arrays = run.trace.as_arrays()
            traces.append({v: arrays[v] for v in BN_VARIABLES})
        data = template.window_dataset(traces, n_slices=3)
        template_bic = fit_and_score(template.unrolled_dag(3), data)
        empty_bic = fit_and_score(empty_dag(list(data)), data)
        assert template_bic > empty_bic
