"""Property-based tests (hypothesis) for interface faults + degradation.

Two invariants the graceful-degradation mode must hold under *any*
seeded interface-fault schedule:

1. Actuation safety: whatever combination of drop/freeze/delay/jitter/
   hang lands on whatever channels, the degraded pipeline never emits a
   non-finite or out-of-bounds actuation command.  (Clipping alone does
   not guarantee this — ``min``/``max`` pass NaN through.)

2. Hang recovery: a hang on a downstream channel (planning, actuation)
   starves the consumer for its window, but once the window closes and
   the stale payload drains at the next planning tick, the faulted
   pipeline agrees bit-for-bit with an unfaulted twin run against an
   identically-stepped world.  The PID smoother is disabled so the
   comparison sees raw planner pass-through — no integrator memory to
   hide residual divergence.
"""

import math
from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ads import ADSConfig, ADSPipeline
from repro.ads.channels import CHANNELS, INTERFACE_KINDS
from repro.ads.control import ControllerConfig
from repro.sim import World, highway_cruise

fault_entries = st.tuples(
    st.sampled_from(INTERFACE_KINDS),
    st.sampled_from(CHANNELS),
    st.integers(0, 60),        # start_tick
    st.integers(1, 40),        # duration_ticks
    st.integers(0, 6))         # param (depth for delay, span for jitter)


def command_is_safe(command):
    values = (command.throttle, command.brake, command.steering)
    if not all(math.isfinite(v) for v in values):
        return False
    return (0.0 <= command.throttle <= 1.0
            and 0.0 <= command.brake <= 1.0
            and -0.55 <= command.steering <= 0.55)


class TestDegradedActuationSafety:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(fault_entries, min_size=1, max_size=4),
           st.integers(0, 50))
    def test_arbitrary_schedule_never_emits_unsafe_actuation(
            self, schedule, seed):
        world = highway_cruise(ego_speed=25.0).make_world()
        pipeline = ADSPipeline(seed=seed)
        for kind, channel, start, duration, param in schedule:
            pipeline.arm_channel_fault(kind, channel, start,
                                       duration_ticks=duration, param=param)
        dt = pipeline.config.control_period
        for _ in range(110):
            command = pipeline.tick(world)
            assert command_is_safe(command), \
                f"unsafe command {command} under schedule {schedule}"
            world.step(command.throttle, command.brake, command.steering, dt)
            if world.in_collision():
                break


class TestHangRecovery:
    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(["planning", "actuation"]),
           st.integers(4, 40), st.integers(1, 30), st.integers(0, 20))
    def test_recovery_restores_bitwise_agreement(self, channel, start,
                                                 duration, seed):
        config = ADSConfig(controller=ControllerConfig(enabled=False))
        reference = ADSPipeline(config, seed=seed)
        faulted = ADSPipeline(config, seed=seed)
        faulted.arm_channel_fault("hang", channel, start,
                                  duration_ticks=duration)
        world_a = highway_cruise(ego_speed=25.0).make_world()
        world_b = highway_cruise(ego_speed=25.0).make_world()

        # First planning tick at or after the hang window closes: the
        # producer runs again, the stale payload drains, and from here
        # on the two stacks must agree exactly.
        divisor = config.planner_divisor
        recovery = -(-(start + duration) // divisor) * divisor
        dt = config.control_period

        for tick in range(recovery + 16):
            ref_command = reference.tick(world_a)
            faulted_command = faulted.tick(world_b)
            if tick >= recovery:
                assert faulted_command == ref_command, \
                    (f"tick {tick} (recovery {recovery}): "
                     f"{faulted_command} != {ref_command}")
            # Both worlds step with the reference command, so the two
            # pipelines always observe identical scenes (open loop for
            # the faulted stack).
            for world in (world_a, world_b):
                world.step(ref_command.throttle, ref_command.brake,
                           ref_command.steering, dt)

    def test_hang_engages_degradation_then_recovers(self):
        pipeline = ADSPipeline(seed=0)
        pipeline.arm_channel_fault("hang", "planning", 10, duration_ticks=20)
        world = highway_cruise(ego_speed=25.0).make_world()
        dt = pipeline.config.control_period
        for _ in range(60):
            command = pipeline.tick(world)
            world.step(command.throttle, command.brake, command.steering, dt)
        assert pipeline.fault_landed
        assert pipeline.degraded_ticks > 0
