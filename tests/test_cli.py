"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_golden(self, capsys):
        assert main(["golden"]) == 0
        out = capsys.readouterr().out
        assert "lead_vehicle_cutin" in out
        assert "min delta_long" in out

    def test_inject(self, capsys):
        code = main(["inject", "highway_cruise", "throttle", "1.0", "100",
                     "--duration", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "outcome" in out
        assert "min delta_long (m)" in out

    def test_inject_unknown_scenario(self, capsys):
        code = main(["inject", "nope", "throttle", "1.0", "100"])
        assert code == 2

    def test_random_with_save(self, tmp_path, capsys):
        path = tmp_path / "random.json"
        assert main(["random", "-n", "3", "--save", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert len(payload["records"]) == 3

    def test_arch(self, capsys):
        assert main(["arch", "-n", "25"]) == 0
        out = capsys.readouterr().out
        assert "masked" in out

    def test_random_record_out_streams_jsonl(self, tmp_path, capsys):
        from repro.core.persistence import load_summary_jsonl
        path = tmp_path / "records.jsonl"
        assert main(["random", "-n", "3", "--record-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 records streamed" in out
        summary = load_summary_jsonl(path)
        assert summary.total == 3

    def test_record_out_excludes_save(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["random", "-n", "2",
                  "--record-out", str(tmp_path / "r.jsonl"),
                  "--save", str(tmp_path / "r.json")])

    def test_scenes(self, capsys):
        assert main(["scenes", "-n", "150"]) == 0
        out = capsys.readouterr().out
        assert "delta_long bin" in out

    def test_exhaustive_capped(self, capsys):
        assert main(["exhaustive", "--stride", "200", "--max", "4"]) == 0
        out = capsys.readouterr().out
        assert "full grid would be" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
