"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_golden(self, capsys):
        assert main(["golden"]) == 0
        out = capsys.readouterr().out
        assert "lead_vehicle_cutin" in out
        assert "min delta_long" in out

    def test_inject(self, capsys):
        code = main(["inject", "highway_cruise", "throttle", "1.0", "100",
                     "--duration", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "outcome" in out
        assert "min delta_long (m)" in out

    def test_inject_unknown_scenario(self, capsys):
        code = main(["inject", "nope", "throttle", "1.0", "100"])
        assert code == 2

    def test_random_with_save(self, tmp_path, capsys):
        path = tmp_path / "random.json"
        assert main(["random", "-n", "3", "--save", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert len(payload["records"]) == 3

    def test_arch(self, capsys):
        assert main(["arch", "-n", "25"]) == 0
        out = capsys.readouterr().out
        assert "masked" in out

    def test_random_record_out_streams_jsonl(self, tmp_path, capsys):
        from repro.core.persistence import load_summary_jsonl
        path = tmp_path / "records.jsonl"
        assert main(["random", "-n", "3", "--record-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 records streamed" in out
        summary = load_summary_jsonl(path)
        assert summary.total == 3

    def test_record_out_excludes_save(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["random", "-n", "2",
                  "--record-out", str(tmp_path / "r.jsonl"),
                  "--save", str(tmp_path / "r.json")])

    def test_scenes(self, capsys):
        assert main(["scenes", "-n", "150"]) == 0
        out = capsys.readouterr().out
        assert "delta_long bin" in out

    def test_exhaustive_capped(self, capsys):
        assert main(["exhaustive", "--stride", "200", "--max", "4"]) == 0
        out = capsys.readouterr().out
        assert "full grid would be" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_random_with_trace_store(self, tmp_path, capsys):
        """--trace-store spools goldens out-of-core under --cache-dir."""
        assert main(["random", "-n", "2", "--trace-store",
                     "--cache-dir", str(tmp_path)]) == 0
        assert list(tmp_path.glob("traces-*/*.npy"))

    def test_bayesian_batch_training(self, capsys):
        assert main(["bayesian", "--top-k", "2", "--batch-training"]) == 0
        out = capsys.readouterr().out
        assert "precision" in out


class TestMergeCLI:
    def _shard(self, path, style, n=2, base=0):
        from repro.core.persistence import JsonlRecordSink
        from repro.core.results import ExperimentRecord, Hazard
        with JsonlRecordSink(path, style=style) as sink:
            for i in range(n):
                sink.add(ExperimentRecord(
                    scenario="s", injection_tick=base + i,
                    variable="brake", value=0.0, duration_ticks=4,
                    seed=0, hazard=Hazard.NONE, landed=True,
                    pre_delta_long=1.0, pre_delta_lat=1.0,
                    min_delta_long=0.5, min_delta_lat=0.5,
                    sim_seconds=1.0, wall_seconds=0.1))

    def test_merge_accepts_glob_patterns(self, tmp_path, capsys):
        self._shard(tmp_path / "records-0.jsonl.gz", "random")
        self._shard(tmp_path / "records-1.jsonl.gz", "random", base=10)
        pattern = str(tmp_path / "records-*.jsonl.gz")
        assert main(["merge", pattern]) == 0
        out = capsys.readouterr().out
        assert "merged 2 shard stream(s)" in out
        assert "4/4" not in out          # 0 hazards of 4 experiments

    def test_merge_empty_glob_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["merge", str(tmp_path / "records-*.jsonl.gz")])
        message = str(excinfo.value)
        assert "matches no files" in message
        assert "records-*.jsonl.gz" in message   # names the pattern
        assert "\n" not in message               # one line, no traceback

    def test_merge_missing_literal_shard_is_clean_error(self, tmp_path):
        """A literal (non-glob) path that does not exist errors cleanly
        too — naming the path, not leaking a stream-parser errno."""
        missing = tmp_path / "shard7.jsonl"
        with pytest.raises(SystemExit) as excinfo:
            main(["merge", str(missing)])
        message = str(excinfo.value)
        assert "does not exist" in message
        assert "shard7.jsonl" in message
        assert "\n" not in message

    def test_merge_empty_glob_alongside_real_shard_still_errors(
            self, tmp_path):
        """One dead pattern poisons the merge even when other arguments
        match — merging fewer shards than pointed at would fabricate a
        smaller campaign."""
        self._shard(tmp_path / "a.jsonl", "random")
        with pytest.raises(SystemExit, match="matches no files"):
            main(["merge", str(tmp_path / "a.jsonl"),
                  str(tmp_path / "gone-*.jsonl")])

    def test_merge_mixed_styles_is_clean_one_line_error(self, tmp_path):
        self._shard(tmp_path / "a.jsonl", "random")
        self._shard(tmp_path / "b.jsonl", "bayesian")
        with pytest.raises(SystemExit) as excinfo:
            main(["merge", str(tmp_path / "a.jsonl"),
                  str(tmp_path / "b.jsonl")])
        message = str(excinfo.value)
        assert "mix campaign styles" in message
        assert "\n" not in message

    def test_merge_untagged_streams_still_fold(self, tmp_path, capsys):
        """Pre-tag shard files (no _meta header) merge as before."""
        self._shard(tmp_path / "a.jsonl", None)
        self._shard(tmp_path / "b.jsonl", "random", base=10)
        assert main(["merge", str(tmp_path / "a.jsonl"),
                     str(tmp_path / "b.jsonl")]) == 0

    def test_merge_garbage_file_is_clean_error(self, tmp_path):
        (tmp_path / "bad.jsonl").write_text("{ not json\n")
        with pytest.raises(SystemExit, match="not a JSONL record stream"):
            main(["merge", str(tmp_path / "bad.jsonl")])

    def test_merge_truncated_gzip_is_clean_error(self, tmp_path):
        """A shard writer crashing mid-write leaves a truncated gzip
        stream; merging it must fail one-line-clean, not traceback."""
        path = tmp_path / "records-0.jsonl.gz"
        self._shard(path, "random", n=200)
        truncated = path.read_bytes()[:-20]
        path.write_bytes(truncated)
        with pytest.raises(SystemExit, match="not a JSONL record stream"):
            main(["merge", str(path)])

    def test_failed_merge_leaves_no_partial_out_stream(self, tmp_path):
        """--out must not survive a failed merge: a well-formed partial
        file would read as success to downstream scripts."""
        self._shard(tmp_path / "good.jsonl", "random")
        bad = tmp_path / "bad.jsonl.gz"
        self._shard(bad, "random", n=200, base=100)
        bad.write_bytes(bad.read_bytes()[:-20])
        out = tmp_path / "merged.jsonl.gz"
        with pytest.raises(SystemExit):
            main(["merge", str(tmp_path / "good.jsonl"), str(bad),
                  "--out", str(out)])
        assert not out.exists()

    def test_merge_bit_corrupt_gzip_is_clean_error(self, tmp_path):
        """Mid-stream bit corruption (zlib.error, not the truncation
        EOFError) must also fail one-line-clean with no partial out."""
        self._shard(tmp_path / "good.jsonl", "random")
        bad = tmp_path / "bad.jsonl.gz"
        self._shard(bad, "random", n=500, base=100)
        payload = bytearray(bad.read_bytes())
        middle = len(payload) // 2
        payload[middle:middle + 8] = b"\xff" * 8
        bad.write_bytes(bytes(payload))
        out = tmp_path / "merged.jsonl.gz"
        with pytest.raises(SystemExit, match="not a JSONL record stream"):
            main(["merge", str(tmp_path / "good.jsonl"), str(bad),
                  "--out", str(out)])
        assert not out.exists()

    def test_glob_expansion_orders_shards_numerically(self, tmp_path):
        """records-10 must sort after records-9, not after records-1."""
        from repro.cli import _expand_shards
        for index in (0, 1, 2, 9, 10, 11):
            self._shard(tmp_path / f"records-{index}.jsonl", "random",
                        n=1, base=index)
        expanded = _expand_shards([str(tmp_path / "records-*.jsonl")])
        names = [p.rsplit("/", 1)[-1] for p in expanded]
        assert names == [f"records-{i}.jsonl"
                         for i in (0, 1, 2, 9, 10, 11)]

    def test_sink_write_failure_not_blamed_on_shard(self, tmp_path):
        """An output-side failure must not report the input shard as
        corrupt — and must still remove the partial out file."""
        from repro.core.persistence import merge_record_shards
        shard = tmp_path / "good.jsonl"
        self._shard(shard, "random")

        class ExplodingSink:
            path = tmp_path / "merged.jsonl"

            def add(self, record):
                raise OSError(28, "No space left on device")

            def close(self):
                pass

        import repro.core.persistence as persistence
        original = persistence.JsonlRecordSink
        persistence.JsonlRecordSink = lambda *a, **k: ExplodingSink()
        try:
            with pytest.raises(OSError) as excinfo:
                merge_record_shards([shard],
                                    out_path=tmp_path / "merged.jsonl")
        finally:
            persistence.JsonlRecordSink = original
        assert "record stream" not in str(excinfo.value)

    def test_merge_out_preserves_style_tag(self, tmp_path):
        from repro.core.persistence import record_stream_style
        self._shard(tmp_path / "a.jsonl", "arch")
        out = tmp_path / "merged.jsonl.gz"
        assert main(["merge", str(tmp_path / "a.jsonl"),
                     "--out", str(out)]) == 0
        assert record_stream_style(out) == "arch"
