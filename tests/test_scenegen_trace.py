"""Tests for the scene generator and trace recorder."""

import numpy as np
import pytest

from repro.sim import Scene, SceneGenerator, Trace


class TestSceneGenerator:
    def test_deterministic_for_seed(self):
        a = SceneGenerator(seed=42).generate(50)
        b = SceneGenerator(seed=42).generate(50)
        assert [s.ego_speed for s in a] == [s.ego_speed for s in b]

    def test_different_seeds_differ(self):
        a = SceneGenerator(seed=1).generate(50)
        b = SceneGenerator(seed=2).generate(50)
        assert [s.ego_speed for s in a] != [s.ego_speed for s in b]

    def test_scene_ids_sequential(self):
        scenes = SceneGenerator(seed=0).generate(10)
        assert [s.scene_id for s in scenes] == list(range(10))

    def test_speed_band(self):
        scenes = SceneGenerator(seed=0).generate(300)
        speeds = np.array([s.ego_speed for s in scenes])
        assert speeds.min() >= 22.0
        assert speeds.max() <= 36.0

    def test_vehicle_count_bounded(self):
        scenes = SceneGenerator(seed=0, max_vehicles=3).generate(200)
        assert max(len(s.obstacles) for s in scenes) <= 3

    def test_ego_lane_vehicles_are_ahead(self):
        generator = SceneGenerator(seed=0)
        for scene in generator.generate(300):
            ego_y = generator.road.lane_center(scene.ego_lane)
            for obstacle in scene.obstacles:
                if abs(obstacle.y - ego_y) < 0.1:
                    assert obstacle.x > 0.0

    def test_stopped_vehicles_appear(self):
        scenes = SceneGenerator(seed=0).generate(1000)
        stopped = [o for s in scenes for o in s.obstacles if o.v == 0.0]
        assert stopped  # the critical tail exists

    def test_to_world_round_trip(self):
        generator = SceneGenerator(seed=0)
        scene = generator.generate(5)[3]
        world = scene.to_world(road=generator.road)
        assert world.ego.state.v == pytest.approx(scene.ego_speed)
        assert len(world.npcs) == len(scene.obstacles)

    def test_scene_is_frozen(self):
        scene = Scene(scene_id=0, ego_speed=30.0, ego_lane=1)
        with pytest.raises(AttributeError):
            scene.ego_speed = 10.0


class TestTrace:
    def test_record_and_read_back(self):
        trace = Trace()
        trace.record({"v": 1.0, "x": 2.0})
        trace.record({"v": 3.0, "x": 4.0})
        arrays = trace.as_arrays()
        assert np.allclose(arrays["v"], [1.0, 3.0])
        assert len(trace) == 2

    def test_schema_enforced(self):
        trace = Trace()
        trace.record({"v": 1.0})
        with pytest.raises(ValueError):
            trace.record({"v": 1.0, "extra": 2.0})
        with pytest.raises(ValueError):
            trace.record({})

    def test_column(self):
        trace = Trace()
        trace.record({"v": 5.0})
        assert trace.column("v").tolist() == [5.0]

    def test_last(self):
        trace = Trace()
        trace.record({"v": 5.0})
        trace.record({"v": 7.0})
        assert trace.last("v") == 7.0

    def test_last_empty_raises(self):
        trace = Trace()
        trace.record({"v": 5.0})
        with pytest.raises(KeyError):
            trace.last("missing")

    def test_window(self):
        trace = Trace()
        for i in range(5):
            trace.record({"v": float(i)})
        window = trace.window(1, 3)
        assert window["v"].tolist() == [1.0, 2.0]

    def test_to_csv(self):
        trace = Trace()
        trace.record({"t": 0.0, "v": 1.5})
        trace.record({"t": 0.1, "v": 2.5})
        csv = trace.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "t,v"
        assert lines[1] == "0,1.5"
        assert lines[2] == "0.1,2.5"

    def test_save_csv(self, tmp_path):
        trace = Trace()
        trace.record({"v": 3.0})
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        assert path.read_text().startswith("v\n")

    def test_csv_round_trips_non_finite_floats(self, tmp_path):
        """Regression: ``%.6g`` spelled inf/nan as tokens no reader
        decoded.  Non-finite cells now use the same spellings as
        ``persistence.encode_float`` and round-trip losslessly."""
        import math

        from repro.core.persistence import encode_float
        trace = Trace()
        trace.record({"delta": math.inf, "lat": 1.25})
        trace.record({"delta": -math.inf, "lat": math.nan})
        csv = trace.to_csv()
        for value in (math.inf, -math.inf, math.nan):
            assert str(encode_float(value)) in csv
        assert "inf," not in csv and ",inf" not in csv
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        restored = Trace.load_csv(path)
        assert restored.columns == trace.columns
        assert restored.column("delta").tolist() == [math.inf, -math.inf]
        lat = restored.column("lat").tolist()
        assert lat[0] == 1.25
        assert math.isnan(lat[1])

    def test_from_csv_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            Trace.from_csv("a,b\n1.0\n")
