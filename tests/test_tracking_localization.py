"""Tests for the multi-object tracker and the ego EKF."""

import numpy as np
import pytest

from repro.ads import (Detection, EgoLocalizer, GpsFix, ImuSample,
                       LocalizerConfig, MultiObjectTracker, TrackerConfig)


def noisy_detections(rng, x, y, v, sigma=0.4):
    return [Detection(x + rng.normal(0, sigma), y + rng.normal(0, sigma), v)]


class TestTracker:
    def test_track_confirmed_after_age(self):
        tracker = MultiObjectTracker(TrackerConfig(confirm_age=2))
        assert tracker.update([Detection(50.0, 5.5, 20.0)], dt=0.1) == []
        assert tracker.update([Detection(52.0, 5.5, 20.0)], dt=0.1) != []

    def test_track_position_smooths_noise(self):
        rng = np.random.default_rng(0)
        tracker = MultiObjectTracker()
        x = 50.0
        estimates = []
        for _ in range(40):
            x += 20.0 * 0.1
            tracks = tracker.update(noisy_detections(rng, x, 5.5, 20.0),
                                    dt=0.1)
            if tracks:
                estimates.append(tracks[0].x - x)
        errors = np.abs(np.array(estimates[10:]))
        assert errors.mean() < 0.4  # better than raw sensor sigma

    def test_velocity_estimated(self):
        rng = np.random.default_rng(1)
        tracker = MultiObjectTracker()
        x = 50.0
        tracks = []
        for _ in range(50):
            x += 15.0 * 0.1
            tracks = tracker.update(noisy_detections(rng, x, 5.5, 15.0),
                                    dt=0.1)
        assert tracks[0].vx == pytest.approx(15.0, abs=1.0)

    def test_track_dropped_after_misses(self):
        tracker = MultiObjectTracker(TrackerConfig(max_misses=2,
                                                   confirm_age=1))
        tracker.update([Detection(50.0, 5.5, 0.0)], dt=0.1)
        for _ in range(5):
            tracks = tracker.update([], dt=0.1)
        assert tracks == []

    def test_coasting_through_single_miss(self):
        tracker = MultiObjectTracker(TrackerConfig(confirm_age=1))
        for i in range(5):
            tracker.update([Detection(50.0 + i, 5.5, 10.0)], dt=0.1)
        tracks = tracker.update([], dt=0.1)  # dropout frame
        assert len(tracks) == 1              # still predicted forward

    def test_two_objects_two_tracks(self):
        tracker = MultiObjectTracker(TrackerConfig(confirm_age=1))
        detections = [Detection(50.0, 5.5, 10.0), Detection(90.0, 9.2, 20.0)]
        tracker.update(detections, dt=0.1)
        tracks = tracker.update(detections, dt=0.1)
        assert len(tracks) == 2
        ids = {t.track_id for t in tracks}
        assert len(ids) == 2

    def test_disabled_mode_believes_detections(self):
        tracker = MultiObjectTracker(TrackerConfig(enabled=False))
        tracks = tracker.update([Detection(77.0, 5.5, 13.0)], dt=0.1)
        assert tracks[0].x == pytest.approx(77.0)
        assert tracks[0].vx == pytest.approx(13.0)

    def test_reset(self):
        tracker = MultiObjectTracker(TrackerConfig(confirm_age=1))
        tracker.update([Detection(50.0, 5.5, 0.0)], dt=0.1)
        tracker.reset()
        assert tracker.update([], dt=0.1) == []


class TestLocalizer:
    def run_localizer(self, localizer, rng, n=100, v=20.0, gps_sigma=0.8):
        estimates = []
        x = 0.0
        for _ in range(n):
            x += v * 0.1
            gps = GpsFix(x + rng.normal(0, gps_sigma),
                         rng.normal(0, gps_sigma))
            imu = ImuSample(v=v + rng.normal(0, 0.1))
            estimates.append(localizer.update(gps, imu, 0.0, dt=0.1))
        return x, estimates

    def test_estimate_converges(self):
        rng = np.random.default_rng(0)
        localizer = EgoLocalizer()
        truth_x, estimates = self.run_localizer(localizer, rng)
        assert estimates[-1].x == pytest.approx(truth_x, abs=1.0)
        assert estimates[-1].v == pytest.approx(20.0, abs=0.3)

    def test_fusion_beats_raw_gps(self):
        rng = np.random.default_rng(1)
        localizer = EgoLocalizer()
        errors_fused = []
        errors_raw = []
        x = 0.0
        for _ in range(200):
            x += 20.0 * 0.1
            gps = GpsFix(x + rng.normal(0, 0.8), rng.normal(0, 0.8))
            imu = ImuSample(v=20.0 + rng.normal(0, 0.1))
            estimate = localizer.update(gps, imu, 0.0, dt=0.1)
            errors_fused.append(abs(estimate.x - x))
            errors_raw.append(abs(gps.x - x))
        assert np.mean(errors_fused[50:]) < np.mean(errors_raw[50:])

    def test_disabled_passthrough(self):
        localizer = EgoLocalizer(LocalizerConfig(enabled=False))
        estimate = localizer.update(GpsFix(12.0, 3.0), ImuSample(v=9.0),
                                    0.0, dt=0.1)
        assert estimate.x == 12.0 and estimate.v == 9.0

    def test_speed_never_negative(self):
        localizer = EgoLocalizer()
        for _ in range(20):
            estimate = localizer.update(GpsFix(0.0, 0.0),
                                        ImuSample(v=-3.0), 0.0, dt=0.1)
        assert estimate.v >= 0.0

    def test_reset_forgets_state(self):
        rng = np.random.default_rng(2)
        localizer = EgoLocalizer()
        self.run_localizer(localizer, rng, n=50)
        localizer.reset()
        estimate = localizer.update(GpsFix(1000.0, 0.0), ImuSample(v=5.0),
                                    0.0, dt=0.1)
        assert estimate.x == pytest.approx(1000.0)  # re-initialized
