"""Tests for the instruction-memory injection campaign."""

import numpy as np
import pytest

from repro.arch import (Outcome, default_kernels, inject_instruction_fault,
                        kalman_kernel, outcome_rates,
                        run_instruction_campaign)


class TestInstructionInjection:
    def test_single_injection_classified(self):
        rng = np.random.default_rng(0)
        result = inject_instruction_fault(kalman_kernel(), rng)
        assert result.outcome in set(Outcome)
        assert result.kernel == "kalman"

    def test_deterministic_for_seed(self):
        a = inject_instruction_fault(kalman_kernel(),
                                     np.random.default_rng(3))
        b = inject_instruction_fault(kalman_kernel(),
                                     np.random.default_rng(3))
        assert a.outcome == b.outcome

    def test_campaign_covers_outcomes(self):
        results = run_instruction_campaign(default_kernels(), 150, seed=0)
        rates = outcome_rates(results)
        assert rates["masked"] > 0.2
        assert rates["crash"] > 0.05   # opcode corruption traps at decode
        assert sum(rates.values()) == pytest.approx(1.0)

    def test_instruction_crashes_more_than_registers(self):
        """Opcode bytes decode-trap; register values rarely do."""
        from repro.arch import run_campaign
        kernels = default_kernels()
        instruction = outcome_rates(
            run_instruction_campaign(kernels, 250, seed=1))
        register = outcome_rates(run_campaign(kernels, 250, seed=1))
        assert instruction["crash"] > register["crash"]
