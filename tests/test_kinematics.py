"""Tests for the bicycle model and RK4 integration."""

import numpy as np
import pytest

from repro.sim import (VehicleState, bicycle_derivatives, rk4_step,
                       simulate_constant_controls)

WHEELBASE = 2.8


class TestState:
    def test_array_round_trip(self):
        state = VehicleState(1.0, 2.0, 3.0, 0.1, 0.05)
        assert VehicleState.from_array(state.as_array()) == state

    def test_with_speed(self):
        state = VehicleState(v=10.0).with_speed(5.0)
        assert state.v == 5.0


class TestDerivatives:
    def test_straight_motion(self):
        deriv = bicycle_derivatives(np.array([0, 0, 10.0, 0.0, 0.0]),
                                    acceleration=0.0, steering_rate=0.0,
                                    wheelbase=WHEELBASE)
        assert np.allclose(deriv, [10.0, 0.0, 0.0, 0.0, 0.0])

    def test_heading_rotates_velocity(self):
        deriv = bicycle_derivatives(
            np.array([0, 0, 10.0, np.pi / 2, 0.0]), 0.0, 0.0, WHEELBASE)
        assert deriv[0] == pytest.approx(0.0, abs=1e-12)
        assert deriv[1] == pytest.approx(10.0)

    def test_steering_creates_yaw_rate(self):
        deriv = bicycle_derivatives(np.array([0, 0, 10.0, 0.0, 0.1]),
                                    0.0, 0.0, WHEELBASE)
        assert deriv[3] == pytest.approx(10.0 * np.tan(0.1) / WHEELBASE)

    def test_negative_speed_clamped_in_derivative(self):
        deriv = bicycle_derivatives(np.array([0, 0, -1.0, 0.0, 0.0]),
                                    0.0, 0.0, WHEELBASE)
        assert deriv[0] == 0.0


class TestRK4:
    def test_constant_speed_straight_line(self):
        state = VehicleState(v=20.0)
        state = rk4_step(state, 0.0, 0.0, WHEELBASE, dt=1.0)
        assert state.x == pytest.approx(20.0)
        assert state.y == pytest.approx(0.0, abs=1e-12)

    def test_constant_acceleration_distance(self):
        # x = v0 t + a t^2 / 2 is exact for RK4 on this system.
        state = VehicleState(v=10.0)
        for _ in range(100):
            state = rk4_step(state, 2.0, 0.0, WHEELBASE, dt=0.01)
        assert state.v == pytest.approx(12.0)
        assert state.x == pytest.approx(10.0 * 1 + 2.0 * 0.5, rel=1e-6)

    def test_braking_does_not_reverse(self):
        state = VehicleState(v=1.0)
        for _ in range(100):
            state = rk4_step(state, -5.0, 0.0, WHEELBASE, dt=0.05)
        assert state.v == 0.0
        assert state.x > 0.0

    def test_stopped_vehicle_stays_put(self):
        state = VehicleState(v=0.0)
        state = rk4_step(state, -3.0, 0.0, WHEELBASE, dt=0.5)
        assert state.x == pytest.approx(0.0, abs=1e-6)

    def test_circular_motion_radius(self):
        # Constant speed and steering trace a circle of radius L / tan(phi).
        phi = 0.2
        speed = 10.0
        radius = WHEELBASE / np.tan(phi)
        state = VehicleState(v=speed, phi=phi)
        states = simulate_constant_controls(state, 0.0, 0.0, WHEELBASE,
                                            dt=0.005,
                                            n_steps=2000)
        xs = np.array([s.x for s in states])
        ys = np.array([s.y for s in states])
        # Circle center is at (0, radius) for theta0 = 0.
        distances = np.sqrt(xs ** 2 + (ys - radius) ** 2)
        assert np.allclose(distances, radius, rtol=1e-4)

    def test_heading_integral_matches_turn(self):
        phi = 0.1
        state = VehicleState(v=5.0, phi=phi)
        for _ in range(100):
            state = rk4_step(state, 0.0, 0.0, WHEELBASE, dt=0.01)
        expected = 5.0 * np.tan(phi) / WHEELBASE * 1.0
        assert state.theta == pytest.approx(expected, rel=1e-6)

    def test_steering_rate_integrates(self):
        state = VehicleState(v=10.0)
        state = rk4_step(state, 0.0, 0.05, WHEELBASE, dt=1.0)
        assert state.phi == pytest.approx(0.05)

    def test_simulate_returns_initial_state_first(self):
        state = VehicleState(v=3.0)
        states = simulate_constant_controls(state, 0.0, 0.0, WHEELBASE,
                                            dt=0.1, n_steps=5)
        assert states[0] == state
        assert len(states) == 6
