"""Tests for the bicycle model and RK4 integration."""

import struct

import numpy as np
import pytest

from repro.sim import (VehicleState, bicycle_derivatives, rk4_step,
                       simulate_constant_controls)
from repro.sim.fastmath import clip_scalar

WHEELBASE = 2.8


class TestState:
    def test_array_round_trip(self):
        state = VehicleState(1.0, 2.0, 3.0, 0.1, 0.05)
        assert VehicleState.from_array(state.as_array()) == state

    def test_with_speed(self):
        state = VehicleState(v=10.0).with_speed(5.0)
        assert state.v == 5.0


class TestDerivatives:
    def test_straight_motion(self):
        deriv = bicycle_derivatives(np.array([0, 0, 10.0, 0.0, 0.0]),
                                    acceleration=0.0, steering_rate=0.0,
                                    wheelbase=WHEELBASE)
        assert np.allclose(deriv, [10.0, 0.0, 0.0, 0.0, 0.0])

    def test_heading_rotates_velocity(self):
        deriv = bicycle_derivatives(
            np.array([0, 0, 10.0, np.pi / 2, 0.0]), 0.0, 0.0, WHEELBASE)
        assert deriv[0] == pytest.approx(0.0, abs=1e-12)
        assert deriv[1] == pytest.approx(10.0)

    def test_steering_creates_yaw_rate(self):
        deriv = bicycle_derivatives(np.array([0, 0, 10.0, 0.0, 0.1]),
                                    0.0, 0.0, WHEELBASE)
        assert deriv[3] == pytest.approx(10.0 * np.tan(0.1) / WHEELBASE)

    def test_negative_speed_clamped_in_derivative(self):
        deriv = bicycle_derivatives(np.array([0, 0, -1.0, 0.0, 0.0]),
                                    0.0, 0.0, WHEELBASE)
        assert deriv[0] == 0.0


class TestRK4:
    def test_constant_speed_straight_line(self):
        state = VehicleState(v=20.0)
        state = rk4_step(state, 0.0, 0.0, WHEELBASE, dt=1.0)
        assert state.x == pytest.approx(20.0)
        assert state.y == pytest.approx(0.0, abs=1e-12)

    def test_constant_acceleration_distance(self):
        # x = v0 t + a t^2 / 2 is exact for RK4 on this system.
        state = VehicleState(v=10.0)
        for _ in range(100):
            state = rk4_step(state, 2.0, 0.0, WHEELBASE, dt=0.01)
        assert state.v == pytest.approx(12.0)
        assert state.x == pytest.approx(10.0 * 1 + 2.0 * 0.5, rel=1e-6)

    def test_braking_does_not_reverse(self):
        state = VehicleState(v=1.0)
        for _ in range(100):
            state = rk4_step(state, -5.0, 0.0, WHEELBASE, dt=0.05)
        assert state.v == 0.0
        assert state.x > 0.0

    def test_stopped_vehicle_stays_put(self):
        state = VehicleState(v=0.0)
        state = rk4_step(state, -3.0, 0.0, WHEELBASE, dt=0.5)
        assert state.x == pytest.approx(0.0, abs=1e-6)

    def test_circular_motion_radius(self):
        # Constant speed and steering trace a circle of radius L / tan(phi).
        phi = 0.2
        speed = 10.0
        radius = WHEELBASE / np.tan(phi)
        state = VehicleState(v=speed, phi=phi)
        states = simulate_constant_controls(state, 0.0, 0.0, WHEELBASE,
                                            dt=0.005,
                                            n_steps=2000)
        xs = np.array([s.x for s in states])
        ys = np.array([s.y for s in states])
        # Circle center is at (0, radius) for theta0 = 0.
        distances = np.sqrt(xs ** 2 + (ys - radius) ** 2)
        assert np.allclose(distances, radius, rtol=1e-4)

    def test_heading_integral_matches_turn(self):
        phi = 0.1
        state = VehicleState(v=5.0, phi=phi)
        for _ in range(100):
            state = rk4_step(state, 0.0, 0.0, WHEELBASE, dt=0.01)
        expected = 5.0 * np.tan(phi) / WHEELBASE * 1.0
        assert state.theta == pytest.approx(expected, rel=1e-6)

    def test_steering_rate_integrates(self):
        state = VehicleState(v=10.0)
        state = rk4_step(state, 0.0, 0.05, WHEELBASE, dt=1.0)
        assert state.phi == pytest.approx(0.05)

    def test_simulate_returns_initial_state_first(self):
        state = VehicleState(v=3.0)
        states = simulate_constant_controls(state, 0.0, 0.0, WHEELBASE,
                                            dt=0.1, n_steps=5)
        assert states[0] == state
        assert len(states) == 6


class TestScalarPathRegression:
    """The allocation-free scalar hot path is bit-for-bit stable."""

    @staticmethod
    def _reference_rk4_step(state, acceleration, steering_rate,
                            wheelbase, dt):
        """Straightforward array-based RK4 (one allocation per stage).

        The shape the scalar path had before the allocation-free
        rewrite; :func:`rk4_step` must reproduce it bit for bit.
        """
        arr = state.as_array()
        k1 = bicycle_derivatives(arr, acceleration, steering_rate,
                                 wheelbase)
        k2 = bicycle_derivatives(arr + 0.5 * dt * k1, acceleration,
                                 steering_rate, wheelbase)
        k3 = bicycle_derivatives(arr + 0.5 * dt * k2, acceleration,
                                 steering_rate, wheelbase)
        k4 = bicycle_derivatives(arr + dt * k3, acceleration,
                                 steering_rate, wheelbase)
        new = arr + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
        if new[2] < 0.0:
            new[2] = 0.0
        return VehicleState.from_array(new)

    def test_rk4_step_bitwise_equals_reference(self):
        rng = np.random.default_rng(7)
        for _ in range(200):
            state = VehicleState(
                x=float(rng.normal(scale=100.0)),
                y=float(rng.normal(scale=3.0)),
                v=float(rng.uniform(-1.0, 40.0)),
                theta=float(rng.normal(scale=0.3)),
                phi=float(rng.normal(scale=0.1)))
            accel = float(rng.uniform(-6.0, 3.5))
            rate = float(rng.uniform(-0.5, 0.5))
            dt = float(rng.choice([0.01, 0.05, 0.1]))
            fast = rk4_step(state, accel, rate, WHEELBASE, dt)
            ref = self._reference_rk4_step(state, accel, rate,
                                           WHEELBASE, dt)
            assert fast == ref    # dataclass equality: all five floats

    def test_rk4_trajectory_bitwise_equals_reference(self):
        # Divergence compounds over steps, so chain the comparison.
        fast = ref = VehicleState(v=22.0, phi=0.02)
        for step in range(500):
            accel = 1.5 if step < 250 else -4.0
            fast = rk4_step(fast, accel, 0.01, WHEELBASE, 0.02)
            ref = self._reference_rk4_step(ref, accel, 0.01,
                                           WHEELBASE, 0.02)
            assert fast == ref


class TestClipScalar:
    """``clip_scalar`` must equal ``float(np.clip(...))`` bitwise.

    The contract :mod:`repro.sim.fastmath` promises: every IEEE-754
    double *value* — signed zeros, NaNs, infinities, denormals — over
    every ordered bound pair (``lo <= hi``, signed zeros in either
    slot).  NaN or inverted bounds are outside the contract: numpy's
    ``minimum(maximum(...))`` composition answers those differently,
    and no call site can produce them.
    """

    CORNERS = [0.0, -0.0, 1.0, -1.0, float("inf"), float("-inf"),
               float("nan"), 5e-324, -5e-324, 2.2250738585072014e-308,
               -2.2250738585072014e-308, 1e308, -1e308, 0.5, -0.5]
    BOUNDS = [(-1.0, 1.0), (0.0, 1.0), (0.0, -0.0), (-0.0, 0.0),
              (-0.0, -0.0), (0.0, 0.0), (float("-inf"), float("inf")),
              (float("-inf"), 0.0), (-0.0, float("inf"))]

    @staticmethod
    def _bits(value: float) -> bytes:
        return struct.pack("<d", value)

    def test_corner_inputs_bitwise(self):
        for low, high in self.BOUNDS:
            for value in self.CORNERS:
                ours = clip_scalar(value, low, high)
                theirs = float(np.clip(value, low, high))
                assert self._bits(ours) == self._bits(theirs), \
                    (value, low, high, ours, theirs)

    def test_random_inputs_bitwise(self):
        rng = np.random.default_rng(11)
        raw = rng.integers(0, 2 ** 64, size=6000, dtype=np.uint64)
        doubles = raw.view(np.float64)
        checked = 0
        for i in range(0, len(doubles), 3):
            value, low, high = (float(doubles[i]), float(doubles[i + 1]),
                                float(doubles[i + 2]))
            if not low <= high:    # unordered/NaN bounds: no contract
                low, high = min(high, low), max(high, low)
                if not low <= high:
                    continue
            checked += 1
            ours = clip_scalar(value, low, high)
            theirs = float(np.clip(value, low, high))
            assert self._bits(ours) == self._bits(theirs), \
                (value, low, high)
        assert checked > 500
