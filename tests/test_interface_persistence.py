"""Record-stream compatibility across the interface-fault extension.

The persistence contract: ``kind``/``channel``/``degraded`` serialize
only when set, so value-fault records keep the exact byte layout
streams had before interface faults existed — old JSONL shards load
unchanged, new value-fault shards are byte-identical to what the old
code would have written, and ``repro merge`` folds a mix of both.
"""

import json

from repro.core import CampaignSummary, ExperimentRecord, Hazard
from repro.core.persistence import (JsonlRecordSink, iter_records_jsonl,
                                    merge_record_shards, record_from_dict,
                                    record_to_dict)

#: A literal record line exactly as pre-interface-fault streams wrote
#: it (no kind/channel/degraded keys anywhere).
LEGACY_LINE = {
    "scenario": "highway_cruise", "injection_tick": 40,
    "variable": "throttle", "value": 1.0, "duration_ticks": 4,
    "seed": 0, "hazard": "none", "landed": True,
    "pre_delta_long": 12.5, "pre_delta_lat": 3.0,
    "min_delta_long": 11.0, "min_delta_lat": 2.5,
    "sim_seconds": 24.0, "wall_seconds": 0.25,
}


def value_record(**overrides):
    fields = dict(
        scenario="highway_cruise", injection_tick=40, variable="throttle",
        value=1.0, duration_ticks=4, seed=0, hazard=Hazard.NONE,
        landed=True, pre_delta_long=12.5, pre_delta_lat=3.0,
        min_delta_long=11.0, min_delta_lat=2.5, sim_seconds=24.0,
        wall_seconds=0.25)
    fields.update(overrides)
    return ExperimentRecord(**fields)


def interface_record(**overrides):
    return value_record(variable="freeze@planning", value=0.0,
                        kind="freeze", channel="planning", degraded=True,
                        **overrides)


class TestOnlyWhenSetSerialization:
    def test_value_record_keeps_legacy_byte_layout(self):
        assert record_to_dict(value_record()) == LEGACY_LINE

    def test_legacy_line_loads_with_defaults(self):
        record = record_from_dict(dict(LEGACY_LINE))
        assert record.kind == "value"
        assert record.channel is None
        assert not record.degraded
        assert not record.masked_by_degradation

    def test_interface_record_round_trips(self):
        record = interface_record()
        restored = record_from_dict(
            json.loads(json.dumps(record_to_dict(record))))
        assert restored == record
        assert restored.kind == "freeze"
        assert restored.channel == "planning"
        assert restored.degraded
        assert restored.masked_by_degradation

    def test_degraded_hazardous_record_is_not_masked(self):
        record = interface_record(hazard=Hazard.COLLISION)
        restored = record_from_dict(record_to_dict(record))
        assert restored.degraded and not restored.masked_by_degradation


class TestMixedShardMerge:
    """Pre-interface and post-interface shards fold into one summary."""

    def write_shard(self, path, records, style="random"):
        sink = JsonlRecordSink(path, style=style)
        for record in records:
            sink.add(record)
        sink.close()

    def test_legacy_literal_stream_loads_unchanged(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        with open(path, "w") as stream:
            json.dump({"_meta": {"style": "random"}}, stream)
            stream.write("\n")
            json.dump(LEGACY_LINE, stream)
            stream.write("\n")
        records = list(iter_records_jsonl(path))
        assert records == [value_record()]

    def test_merge_folds_old_and_new_shards(self, tmp_path):
        old = tmp_path / "records-0.jsonl"
        new = tmp_path / "records-1.jsonl"
        with open(old, "w") as stream:
            json.dump({"_meta": {"style": "random"}}, stream)
            stream.write("\n")
            json.dump(LEGACY_LINE, stream)
            stream.write("\n")
        self.write_shard(new, [interface_record(),
                               interface_record(hazard=Hazard.COLLISION)])
        merged = merge_record_shards([old, new],
                                     out_path=tmp_path / "merged.jsonl")
        assert merged.total == 3
        assert merged.hazards == 1
        assert merged.degraded == 2
        assert merged.masked == 1
        # the merged stream re-reads to the same aggregate
        refolded = CampaignSummary()
        for record in iter_records_jsonl(tmp_path / "merged.jsonl"):
            refolded.add(record)
        assert refolded.same_aggregates(merged)

    def test_summary_merge_folds_degradation_counters(self):
        left, right = CampaignSummary(), CampaignSummary()
        left.add(value_record())
        right.add(interface_record())
        right.add(interface_record(hazard=Hazard.COLLISION))
        merged = CampaignSummary.merge([left, right])
        assert merged.degraded == 2
        assert merged.masked == 1
