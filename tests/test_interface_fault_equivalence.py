"""Interface-fault campaigns: determinism, driver equivalence, oracle.

The interface fault family (drop/freeze/delay/jitter/hang at the typed
module boundaries) rides the same contract as value faults: a seeded
schedule is deterministic, and the record stream is bit-for-bit
identical (wall-clock timing aside) across the serial barrier path,
the process pool, and the streaming pipeline driver — including
checkpoint-forked validation versus the full-replay reference oracle.

The degradation half: with the graceful-degradation mode disabled the
brittle stack turns a frozen control-critical channel into a recorded
hazard, and with it enabled the same fault is absorbed by the
safe-stop fallback and recorded as masked-by-degradation.
"""

import dataclasses
from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.arch.injector import Outcome
from repro.core import (Campaign, CampaignConfig, DegradationConfig, Hazard,
                        ListSink, ResilienceConfig)
from repro.core.fault_models import ArchFaultOutcome
from repro.core.interface_faults import (CHANNELS, INTERFACE_KINDS,
                                         interface_fault,
                                         interface_fault_grid,
                                         random_interface_fault)
from repro.ads.runtime import ADSConfig
from repro.sim import highway_cruise, lead_vehicle_cutin, two_lead_reveal

#: The hazard reproduction pair: freezing the planning channel late in
#: two_lead_reveal starves control through the second lead's reveal.
ORACLE_SCENARIO = "two_lead_reveal"
ORACLE_FAULT = dict(kind="freeze", channel="planning", start_tick=80,
                    duration_ticks=25)


def small_scenarios():
    return [replace(highway_cruise(), duration=24.0),
            replace(lead_vehicle_cutin(), duration=16.0),
            replace(two_lead_reveal(), duration=18.0)]


def strip_wall(records):
    rows = []
    for record in records:
        row = asdict(record)
        row.pop("wall_seconds")
        rows.append(row)
    return rows


def no_degradation_config(**kwargs):
    ads = ADSConfig(degradation=DegradationConfig(enabled=False))
    return CampaignConfig(ads=ads, **kwargs)


class HangingModel:
    """Architectural stub that always hangs: register flips hang so
    rarely that exercising the interface_hangs path needs forcing."""

    def sample(self, rng, injection_ticks, duration_ticks=2,
               interface_hangs=False):
        tick = int(injection_ticks[int(rng.integers(len(injection_ticks)))])
        channel = CHANNELS[int(rng.integers(len(CHANNELS)))]
        fault = (interface_fault("hang", channel, tick,
                                 duration_ticks=duration_ticks)
                 if interface_hangs else None)
        return ArchFaultOutcome(kernel="dot16", outcome=Outcome.HANG,
                                relative_error=0.0, fault=fault)


class TestSeededSchedules:
    """Same seed, same schedule — the determinism prerequisite."""

    def test_random_interface_draws_reproduce(self):
        draws = [
            [random_interface_fault(np.random.default_rng(9), [10, 20, 30])
             for _ in range(20)]
            for _ in range(2)]
        assert draws[0] == draws[1]

    def test_grid_is_ordered_and_complete(self):
        grid = interface_fault_grid([5, 10])
        assert len(grid) == 2 * len(INTERFACE_KINDS) * len(CHANNELS)
        assert grid == interface_fault_grid([5, 10])
        assert [f.start_tick for f in grid[:len(grid) // 2]] == \
            [5] * (len(grid) // 2)

    @pytest.mark.parametrize("kind", INTERFACE_KINDS)
    def test_single_fault_records_reproduce(self, kind):
        fault = interface_fault(kind, "perception", 30, duration_ticks=6)
        records = [
            Campaign(small_scenarios(), CampaignConfig()).run_fault(
                ORACLE_SCENARIO, fault)
            for _ in range(2)]
        assert strip_wall(records[:1]) == strip_wall(records[1:])
        assert records[0].kind == kind
        assert records[0].channel == "perception"


class TestDriverEquivalence:
    """Serial barrier == pool workers == streaming pipeline."""

    def records(self, style, pipeline, workers):
        sink = ListSink()
        campaign = Campaign(small_scenarios(), CampaignConfig())
        kwargs = dict(pipeline=pipeline, workers=workers, record_sink=sink)
        if style == "random":
            campaign.random_campaign(12, seed=11, interface_share=0.6,
                                     **kwargs)
        elif style == "exhaustive":
            campaign.exhaustive_campaign(
                tick_stride=40, variable_names=["brake"],
                interface_grid=True, **kwargs)
        elif style == "architectural":
            campaign.architectural_campaign(8, model=HangingModel(),
                                            seed=3, interface_hangs=True,
                                            **kwargs)
        else:
            campaign.bayesian_campaign(top_k=4,
                                       interface_probe=("freeze", "delay"),
                                       **kwargs)
        return strip_wall(sink.records)

    @pytest.mark.parametrize("style", ["random", "exhaustive",
                                       "architectural", "bayesian"])
    def test_serial_pool_pipeline_identical(self, style):
        serial = self.records(style, pipeline=False, workers=None)
        assert serial, "campaign produced no records"
        interface = [r for r in serial if r["kind"] != "value"]
        assert interface, "campaign exercised no interface faults"
        assert serial == self.records(style, pipeline=True, workers=None)
        assert serial == self.records(style, pipeline=True, workers=2)

    def test_bayesian_eager_dispatch_keeps_probe_order(self):
        # top_k=None enables eager dispatch: value jobs go out as each
        # scenario's mining lands, probes at finalize — the emitted
        # stream must still equal the barrier path's candidate order.
        def bay(pipeline, workers):
            sink = ListSink()
            Campaign(small_scenarios(), CampaignConfig()).bayesian_campaign(
                interface_probe=("hang",), pipeline=pipeline,
                workers=workers, record_sink=sink)
            return strip_wall(sink.records)

        serial = bay(False, None)
        assert serial == bay(True, None)
        assert serial == bay(True, 2)

    def test_resume_skips_finished_interface_experiments(self, tmp_path):
        def campaign(resume):
            return Campaign(
                small_scenarios(),
                CampaignConfig(
                    resilience=ResilienceConfig(resume=resume)),
                cache_dir=tmp_path / "cache")

        first = campaign(resume=False)
        sink = ListSink()
        first.random_campaign(10, seed=5, interface_share=0.7,
                              record_sink=sink)
        resumed = campaign(resume=True)
        again = ListSink()
        resumed.random_campaign(10, seed=5, interface_share=0.7,
                                record_sink=again)
        journal = resumed._last_journal
        assert journal.hits == len(sink.records)
        assert journal.appended == 0
        assert strip_wall(again.records) == strip_wall(sink.records)


class TestCheckpointOracle:
    """Checkpoint-forked interface faults equal full replay from 0."""

    def run(self, use_checkpoints, degradation_enabled, **fault_kw):
        config = (CampaignConfig(use_checkpoints=use_checkpoints)
                  if degradation_enabled
                  else no_degradation_config(
                      use_checkpoints=use_checkpoints))
        campaign = Campaign(config=config)
        spec = dict(ORACLE_FAULT)
        spec.update(fault_kw)
        return campaign.run_fault(ORACLE_SCENARIO, interface_fault(**spec))

    @pytest.mark.parametrize("kind", INTERFACE_KINDS)
    def test_forked_equals_full_replay(self, kind):
        for degradation in (True, False):
            replayed = self.run(False, degradation, kind=kind)
            forked = self.run(True, degradation, kind=kind)
            assert strip_wall([replayed]) == strip_wall([forked])

    def test_freeze_reproduces_hazard_without_degradation(self):
        record = self.run(False, degradation_enabled=False)
        assert record.hazard is Hazard.COLLISION
        assert record.landed
        assert not record.degraded
        # the scalar oracle (full replay) and the checkpoint fork agree
        assert strip_wall([record]) == \
            strip_wall([self.run(True, degradation_enabled=False)])

    def test_same_freeze_is_masked_with_degradation(self):
        record = self.run(True, degradation_enabled=True)
        assert record.hazard is Hazard.NONE
        assert record.landed
        assert record.degraded
        assert record.masked_by_degradation

    def test_degradation_off_is_recorded_distinctly(self):
        masked = self.run(True, degradation_enabled=True)
        hazardous = self.run(True, degradation_enabled=False)
        assert masked.kind == hazardous.kind == "freeze"
        assert masked.channel == hazardous.channel == "planning"
        assert masked.masked_by_degradation
        assert not hazardous.masked_by_degradation


class TestDegradationNoOverheadPath:
    """Fault-free runs are bit-identical with degradation on or off."""

    def test_golden_trace_unchanged(self):
        scenario = small_scenarios()[0]
        on = Campaign([scenario], CampaignConfig())
        off = Campaign([scenario], no_degradation_config())
        a = on.golden_runs()[scenario.name]
        b = off.golden_runs()[scenario.name]
        columns_a = a.trace.as_arrays()
        columns_b = b.trace.as_arrays()
        assert a.hazard is b.hazard
        if isinstance(columns_a, dict):
            assert all(np.array_equal(columns_a[k], columns_b[k])
                       for k in columns_a)
        else:
            assert np.array_equal(columns_a, columns_b)
