"""Tests for the Bayesian fault-selection engine (the core contribution)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.bayesnet import slice_node
from repro.core import (BN_VARIABLES, MINED_VARIABLES, BayesianFaultInjector,
                        Campaign, CampaignConfig, ads_dbn_template,
                        scene_rows_from_trace)
from repro.sim import (empty_road, highway_cruise, lead_vehicle_cutin,
                       stalled_vehicle)


@pytest.fixture(scope="module")
def small_campaign():
    scenarios = [replace(empty_road(), duration=15.0),
                 replace(highway_cruise(), duration=20.0),
                 replace(lead_vehicle_cutin(), duration=15.0),
                 replace(stalled_vehicle(), duration=20.0)]
    return Campaign(scenarios, CampaignConfig())


@pytest.fixture(scope="module")
def injector(small_campaign):
    return BayesianFaultInjector.train(
        list(small_campaign.golden_runs().values()))


class TestTemplate:
    def test_every_variable_present(self):
        template = ads_dbn_template()
        assert set(template.variables) == set(BN_VARIABLES)

    def test_unrolls_to_three_slices(self):
        dag = ads_dbn_template().unrolled_dag(3)
        assert len(dag) == 3 * len(BN_VARIABLES)

    def test_actuation_drives_future_speed(self):
        dag = ads_dbn_template().unrolled_dag(2)
        assert ("throttle@0", "v@1") in dag.edges()
        assert ("brake@0", "v@1") in dag.edges()

    def test_world_drives_actuation_within_slice(self):
        dag = ads_dbn_template().unrolled_dag(1)
        assert ("gap@0", "brake@0") in dag.edges()


class TestSceneRows:
    def test_rows_pair_consecutive_ticks(self, small_campaign):
        golden = small_campaign.golden_runs()["highway_cruise"]
        rows = list(scene_rows_from_trace("highway_cruise",
                                         golden.trace))
        assert len(rows) == len(golden.trace) - 1
        assert rows[0].injection_tick > rows[0].evidence_tick

    def test_rows_carry_observed_delta(self, small_campaign):
        golden = small_campaign.golden_runs()["highway_cruise"]
        rows = list(scene_rows_from_trace("highway_cruise",
                                         golden.trace))
        assert all(r.observed_delta_long > 0 for r in rows)
        assert all(r.observed_safe for r in rows)


class TestTraining:
    def test_model_covers_three_slices(self, injector):
        nodes = injector.model.dag.nodes()
        assert slice_node("v", 2) in nodes
        assert len(nodes) == 21

    def test_learned_speed_dynamics_sensible(self, injector):
        # v@1 should depend positively on v@0 with weight near 1
        cpd = injector.model.cpds[slice_node("v", 1)]
        weight = dict(zip(cpd.parents, cpd.weights))[slice_node("v", 0)]
        assert 0.7 < weight < 1.2


class TestCounterfactuals:
    def scene(self, small_campaign, scenario, index=50):
        golden = small_campaign.golden_runs()[scenario]
        return list(scene_rows_from_trace(scenario,
                                         golden.trace))[index]

    def test_neutral_intervention_tracks_golden(self, small_campaign,
                                                injector):
        """do(observed value) should predict roughly the observed future."""
        scene = self.scene(small_campaign, "highway_cruise")
        estimate = injector.predict_after_fault(
            scene, "throttle", scene.values["throttle"])
        assert estimate["v"] == pytest.approx(scene.values["v"], abs=2.0)
        assert estimate["gap"] == pytest.approx(scene.values["gap"],
                                                abs=10.0)

    def test_max_throttle_raises_predicted_speed(self, small_campaign,
                                                 injector):
        scene = self.scene(small_campaign, "highway_cruise")
        low = injector.predict_after_fault(scene, "throttle", 0.0)
        high = injector.predict_after_fault(scene, "throttle", 1.0)
        assert high["v_end"] > low["v_end"]

    def test_max_brake_lowers_predicted_speed(self, small_campaign,
                                              injector):
        scene = self.scene(small_campaign, "highway_cruise")
        braked = injector.predict_after_fault(scene, "brake", 1.0)
        coasting = injector.predict_after_fault(scene, "brake", 0.0)
        assert braked["v_end"] < coasting["v_end"]

    def test_throttle_fault_erodes_predicted_potential(self, small_campaign,
                                                       injector):
        scene = self.scene(small_campaign, "stalled_vehicle", index=60)
        nominal = injector.predicted_potential(
            scene, "throttle", scene.values["throttle"])
        faulted = injector.predicted_potential(scene, "throttle", 1.0)
        assert faulted.longitudinal < nominal.longitudinal

    def test_steering_fault_erodes_lateral_potential(self, small_campaign,
                                                     injector):
        scene = self.scene(small_campaign, "empty_road")
        faulted = injector.predicted_potential(scene, "steering", 0.55)
        nominal = injector.predicted_potential(
            scene, "steering", scene.values["steering"])
        assert faulted.lateral < nominal.lateral


class TestMining:
    def test_mining_finds_candidates(self, small_campaign, injector):
        scenes = list(small_campaign.scene_rows())
        candidates, report = injector.mine_critical_faults(scenes)
        assert report.n_scored > 0
        assert report.n_scenes == len(scenes)
        assert candidates, "no critical faults mined"

    def test_candidates_sorted_most_critical_first(self, small_campaign,
                                                   injector):
        candidates, _ = injector.mine_critical_faults(
            small_campaign.scene_rows())
        keys = [c.predicted_minimum for c in candidates]
        assert keys == sorted(keys)

    def test_top_k_truncates(self, small_campaign, injector):
        candidates, _ = injector.mine_critical_faults(
            small_campaign.scene_rows(), top_k=3)
        assert len(candidates) <= 3

    def test_candidates_come_from_safe_scenes(self, small_campaign,
                                              injector):
        candidates, _ = injector.mine_critical_faults(
            small_campaign.scene_rows())
        assert all(c.observed_delta_long > 0 for c in candidates)

    def test_mined_variables_are_mappable(self, small_campaign, injector):
        candidates, _ = injector.mine_critical_faults(
            small_campaign.scene_rows())
        assert all(c.variable in MINED_VARIABLES for c in candidates)

    def test_fault_spec_round_trip(self, small_campaign, injector):
        candidates, _ = injector.mine_critical_faults(
            small_campaign.scene_rows(), top_k=1)
        spec = candidates[0].to_fault_spec(duration_ticks=4)
        assert spec.variable == candidates[0].variable
        assert spec.start_tick == candidates[0].injection_tick
        assert spec.duration_ticks == 4
