"""Streamed sufficient-statistics training must equal the batch oracle.

Two layers of equivalence ride the streaming training stack:

* **Estimator equivalence** — folding data chunk by chunk through
  :class:`repro.bayesnet.TabularSuffStats` /
  :class:`LinearGaussianSuffStats` and finalizing reproduces the batch
  ``fit_*`` results: exactly for tabular counts, and to ≤1e-9 relative
  (measured ~1e-12) for linear-Gaussian weights/intercepts/variances.
* **Campaign equivalence** — Bayesian campaigns trained through the
  streaming trainer (the default) emit candidate lists and validation
  records identical to the batch-trained oracle, and every campaign
  style run with out-of-core ``trace_store`` golden traces is
  record-for-record the in-RAM path — serial and pooled, cold and
  warm caches.
"""

from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.bayesnet import (DAG, LinearGaussianNetworkSuffStats,
                            LinearGaussianSuffStats, TabularSuffStats,
                            fit_linear_gaussian_cpd,
                            fit_linear_gaussian_network, fit_tabular_cpd)
from repro.core import BayesianFaultInjector, Campaign, CampaignConfig
from repro.core.bayesian_fi import BN_VARIABLES, ads_dbn_template
from repro.sim import (StoredTrace, highway_cruise, lead_vehicle_cutin,
                       queued_traffic)

#: The acceptance bound for linear-Gaussian streamed parameters.
RELATIVE_BOUND = 1e-9


def small_scenarios():
    return [replace(highway_cruise(), duration=24.0),
            replace(lead_vehicle_cutin(), duration=16.0),
            replace(queued_traffic(), duration=18.0)]


def strip_wall(records):
    rows = []
    for record in records:
        row = asdict(record)
        row.pop("wall_seconds")   # host timing necessarily differs
        rows.append(row)
    return rows


def candidate_keys(candidates):
    return [(c.scenario, c.injection_tick, c.variable, c.value)
            for c in candidates]


def chunked(data, sizes):
    """Split aligned columns into uneven chunks (the streaming feed)."""
    chunks = []
    start = 0
    for size in sizes:
        chunks.append({name: np.asarray(column)[start:start + size]
                       for name, column in data.items()})
        start += size
    total = len(next(iter(data.values())))
    assert start == total, "sizes must cover the dataset"
    return chunks


def relative_gap(a, b) -> float:
    a, b = np.atleast_1d(np.asarray(a, dtype=float)), \
        np.atleast_1d(np.asarray(b, dtype=float))
    scale = np.maximum(np.abs(b), 1e-12)
    return float(np.max(np.abs(a - b) / scale)) if a.size else 0.0


def assert_cpds_close(streamed, batch, bound=RELATIVE_BOUND):
    assert streamed.parents == batch.parents
    assert relative_gap(streamed.intercept, batch.intercept) <= bound
    assert relative_gap(streamed.variance, batch.variance) <= bound
    assert relative_gap(streamed.weights, batch.weights) <= bound


class TestTabularSuffStats:
    """Streamed counts reproduce the smoothed batch CPT exactly."""

    def dataset(self, n=997, seed=7):
        rng = np.random.default_rng(seed)
        return {"x": rng.integers(0, 3, size=n),
                "a": rng.integers(0, 2, size=n),
                "b": rng.integers(0, 4, size=n)}

    def test_chunked_equals_batch(self):
        data = self.dataset()
        batch = fit_tabular_cpd("x", 3, ["a", "b"], [2, 4], data)
        stats = TabularSuffStats("x", 3, ["a", "b"], [2, 4])
        for chunk in chunked(data, [1, 400, 250, 346]):
            stats.update(chunk)
        streamed = stats.finalize()
        assert np.array_equal(streamed.table, batch.table)

    def test_no_parents(self):
        data = {"x": np.array([0, 1, 1, 2, 2, 2])}
        batch = fit_tabular_cpd("x", 3, [], [], data)
        stats = TabularSuffStats("x", 3, [], [])
        for chunk in chunked(data, [2, 4]):
            stats.update(chunk)
        assert np.array_equal(stats.finalize().table, batch.table)

    def test_zero_pseudocount_unseen_configuration(self):
        """Both paths fall back to uniform on unseen parent configs."""
        data = {"x": np.array([0, 1, 0, 1]), "a": np.array([0, 0, 0, 0])}
        batch = fit_tabular_cpd("x", 2, ["a"], [2], data, pseudocount=0.0)
        stats = TabularSuffStats("x", 2, ["a"], [2], pseudocount=0.0)
        for chunk in chunked(data, [3, 1]):
            stats.update(chunk)
        assert np.array_equal(stats.finalize().table, batch.table)

    def test_mismatched_chunk_rejected(self):
        stats = TabularSuffStats("x", 2, ["a"], [2])
        with pytest.raises(ValueError, match="mismatch"):
            stats.update({"x": np.array([0, 1]), "a": np.array([0])})


class TestLinearGaussianSuffStats:
    """Streamed moments reproduce the batch least squares fit."""

    def dataset(self, n=4096, noise=0.3, seed=3):
        rng = np.random.default_rng(seed)
        a = 20.0 + 5.0 * rng.standard_normal(n)
        b = 60.0 + 25.0 * rng.standard_normal(n)
        y = 1.7 * a - 0.04 * b + 3.5 + noise * rng.standard_normal(n)
        return {"a": a, "b": b, "y": y}

    @pytest.mark.parametrize("noise", [0.3, 1e-3])
    def test_chunked_equals_batch(self, noise):
        """Also at near-deterministic noise, where naive streaming
        moment subtraction would lose the residual to cancellation."""
        data = self.dataset(noise=noise)
        batch = fit_linear_gaussian_cpd("y", ["a", "b"], data)
        stats = LinearGaussianSuffStats("y", ["a", "b"])
        for chunk in chunked(data, [1, 2000, 1500, 595]):
            stats.update(chunk)
        assert_cpds_close(stats.finalize(), batch)

    def test_single_sample_chunks(self):
        data = self.dataset(n=64)
        batch = fit_linear_gaussian_cpd("y", ["a", "b"], data)
        stats = LinearGaussianSuffStats("y", ["a", "b"])
        for chunk in chunked(data, [1] * 64):
            stats.update(chunk)
        assert_cpds_close(stats.finalize(), batch)

    def test_no_parents(self):
        data = self.dataset(n=512)
        batch = fit_linear_gaussian_cpd("y", [], data)
        stats = LinearGaussianSuffStats("y", [])
        for chunk in chunked(data, [100, 412]):
            stats.update(chunk)
        assert_cpds_close(stats.finalize(), batch)

    def test_constant_parent_matches_batch_min_norm(self):
        """Rank-deficient designs: both paths pick the minimum-norm
        solution over the stacked (weights, intercept) vector, so a
        constant parent splits the mean between weight and intercept
        identically."""
        rng = np.random.default_rng(5)
        n = 200
        data = {"a": np.full(n, 2.0),
                "y": 3.2 + 0.1 * rng.standard_normal(n)}
        batch = fit_linear_gaussian_cpd("y", ["a"], data)
        stats = LinearGaussianSuffStats("y", ["a"])
        for chunk in chunked(data, [150, 50]):
            stats.update(chunk)
        streamed = stats.finalize()
        assert streamed.weights[0] != 0.0       # not the centered trap
        assert_cpds_close(streamed, batch)

    def test_variance_floor_applies(self):
        data = {"y": np.full(100, 2.5)}
        stats = LinearGaussianSuffStats("y", [], min_variance=1e-9)
        stats.update(data)
        assert stats.finalize().variance == 1e-9

    def test_empty_finalize_rejected(self):
        with pytest.raises(ValueError, match="no data"):
            LinearGaussianSuffStats("y", ["a"]).finalize()

    def test_network_level(self):
        rng = np.random.default_rng(11)
        n = 2048
        a = rng.standard_normal(n) * 3.0 + 10.0
        b = 0.5 * a + rng.standard_normal(n)
        c = -1.2 * a + 2.0 * b + 0.1 * rng.standard_normal(n)
        data = {"a": a, "b": b, "c": c}
        dag = DAG(nodes=["a", "b", "c"],
                  edges=[("a", "b"), ("a", "c"), ("b", "c")])
        batch = fit_linear_gaussian_network(dag, data)
        stats = LinearGaussianNetworkSuffStats(dag)
        for chunk in chunked(data, [700, 700, 648]):
            stats.update(chunk)
        streamed = stats.finalize()
        for node in dag.nodes():
            assert_cpds_close(streamed.cpds[node], batch.cpds[node])


@pytest.fixture(scope="module")
def golden_campaign():
    campaign = Campaign(small_scenarios(), CampaignConfig())
    campaign.golden_runs()
    return campaign


class TestInjectorTrainerEquivalence:
    """streaming_trainer folds == BayesianFaultInjector.train."""

    def test_cpds_match_batch_fit(self, golden_campaign):
        golden = list(golden_campaign.golden_runs().values())
        batch = BayesianFaultInjector.train(
            golden, safety_config=golden_campaign.config.safety)
        trainer = BayesianFaultInjector.streaming_trainer(
            safety_config=golden_campaign.config.safety)
        for run in golden:
            trainer.add_run(run)
        assert trainer.n_folded == len(golden)
        streamed = trainer.finish()
        assert streamed.slice_dt == batch.slice_dt
        assert set(streamed.model.cpds) == set(batch.model.cpds)
        for node, reference in batch.model.cpds.items():
            assert_cpds_close(streamed.model.cpds[node], reference)

    def test_folds_release_trace_windows(self, golden_campaign):
        """Trainer state is O(parameters): no trace retains a reference."""
        trainer = BayesianFaultInjector.streaming_trainer()
        run = next(iter(golden_campaign.golden_runs().values()))
        trainer.add_run(run)
        n_nodes = len(BN_VARIABLES) * 3
        assert len(trainer._stats._stats) == n_nodes

    def test_short_traces_rejected_like_batch(self):
        from repro.sim import Trace
        trace = Trace()
        trace.record({name: 0.0 for name in ("time",) + BN_VARIABLES})
        trainer = BayesianFaultInjector.streaming_trainer()
        trainer.add_trace(trace)
        with pytest.raises(ValueError, match="window"):
            trainer.finish()

    def test_mining_matches_batch_trained_model(self, golden_campaign):
        """The full inference path agrees, not just the parameters."""
        golden = list(golden_campaign.golden_runs().values())
        batch = BayesianFaultInjector.train(
            golden, safety_config=golden_campaign.config.safety)
        trainer = BayesianFaultInjector.streaming_trainer(
            safety_config=golden_campaign.config.safety)
        for run in golden:
            trainer.add_run(run)
        streamed = trainer.finish()
        scenes = list(golden_campaign.scene_rows())
        mined_batch, _ = batch.mine_critical_faults_batched(scenes)
        mined_streamed, _ = streamed.mine_critical_faults_batched(scenes)
        assert candidate_keys(mined_streamed) == candidate_keys(mined_batch)
        for streamed_c, batch_c in zip(mined_streamed, mined_batch):
            assert streamed_c.predicted_delta_long == pytest.approx(
                batch_c.predicted_delta_long, abs=1e-9)
            assert streamed_c.predicted_delta_lat == pytest.approx(
                batch_c.predicted_delta_lat, abs=1e-9)


@pytest.fixture(scope="module")
def batch_oracle():
    """Barrier path, batch training, in-RAM traces: the full oracle."""
    campaign = Campaign(small_scenarios(), CampaignConfig())
    campaign.golden_runs()
    return campaign


class TestStreamingCampaignEquivalence:
    """streaming_training=True == the batch oracle, record for record."""

    @pytest.mark.parametrize("workers", [None, 2])
    def test_bayesian_streaming_vs_batch_records(self, batch_oracle,
                                                 workers):
        reference = batch_oracle.bayesian_campaign(
            top_k=6, pipeline=False, streaming_training=False)
        streamed = Campaign(small_scenarios(),
                            CampaignConfig()).bayesian_campaign(
            top_k=6, workers=workers)
        assert candidate_keys(streamed.candidates) == \
            candidate_keys(reference.candidates)
        assert strip_wall(streamed.summary.records) == \
            strip_wall(reference.summary.records)

    def test_barrier_streaming_matches_barrier_batch(self, batch_oracle):
        """The pipeline=False path honours the flag the same way."""
        reference = batch_oracle.bayesian_campaign(
            top_k=6, pipeline=False, streaming_training=False)
        streamed = batch_oracle.bayesian_campaign(
            top_k=6, pipeline=False, streaming_training=True)
        assert candidate_keys(streamed.candidates) == \
            candidate_keys(reference.candidates)
        assert strip_wall(streamed.summary.records) == \
            strip_wall(reference.summary.records)

    def test_train_progress_events_tick_per_trace(self):
        events = []
        campaign = Campaign(small_scenarios(), CampaignConfig())
        campaign.bayesian_campaign(top_k=4, on_progress=events.append)
        train = [e for e in events if e.stage == "train"]
        assert [e.done for e in train] == [1, 2, 3]
        assert [e.scenario for e in train] == \
            [s.name for s in campaign.scenarios]
        stages = [e.stage for e in events]
        # golden -> train -> mine -> validate, end to end.
        assert stages.index("train") > stages.index("golden")
        assert stages.index("mined") > stages.index("train")
        assert {"golden", "train", "mined", "validated"} <= set(stages)

    def test_batch_training_emits_no_train_ticks(self):
        events = []
        campaign = Campaign(small_scenarios(), CampaignConfig())
        campaign.bayesian_campaign(top_k=4, streaming_training=False,
                                   on_progress=events.append)
        assert not any(e.stage == "train" for e in events)


class TestTraceStoreCampaignEquivalence:
    """All four styles with out-of-core traces == the in-RAM oracle."""

    @pytest.fixture()
    def store_campaign(self):
        return Campaign(small_scenarios(), CampaignConfig(),
                        trace_store=True)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_random(self, batch_oracle, store_campaign, workers):
        reference = batch_oracle.random_campaign(8, seed=11,
                                                 pipeline=False)
        streamed = store_campaign.random_campaign(8, seed=11,
                                                  workers=workers)
        assert strip_wall(streamed.records) == strip_wall(reference.records)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_exhaustive(self, batch_oracle, store_campaign, workers):
        reference = batch_oracle.exhaustive_campaign(
            tick_stride=40, variable_names=["brake", "steering"],
            pipeline=False)
        streamed = store_campaign.exhaustive_campaign(
            tick_stride=40, variable_names=["brake", "steering"],
            workers=workers)
        assert strip_wall(streamed.records) == strip_wall(reference.records)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_architectural(self, batch_oracle, store_campaign, workers):
        reference, ref_outcomes = batch_oracle.architectural_campaign(
            25, seed=3, pipeline=False)
        streamed, outcomes = store_campaign.architectural_campaign(
            25, seed=3, workers=workers)
        assert outcomes == ref_outcomes
        assert strip_wall(streamed.records) == strip_wall(reference.records)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_bayesian(self, batch_oracle, store_campaign, workers):
        reference = batch_oracle.bayesian_campaign(
            top_k=6, pipeline=False, streaming_training=False)
        streamed = store_campaign.bayesian_campaign(top_k=6,
                                                    workers=workers)
        assert candidate_keys(streamed.candidates) == \
            candidate_keys(reference.candidates)
        assert strip_wall(streamed.summary.records) == \
            strip_wall(reference.summary.records)

    def test_goldens_are_stored_handles(self, store_campaign):
        store_campaign.bayesian_campaign(top_k=3)
        golden = store_campaign._golden or store_campaign._golden_shard
        assert golden
        assert all(isinstance(run.trace, StoredTrace)
                   for run in golden.values())
        store = store_campaign.golden_trace_store()
        assert all(store.has(name) for name in golden)

    def test_barrier_path_spools_too(self, batch_oracle):
        campaign = Campaign(small_scenarios(), CampaignConfig(),
                            trace_store=True)
        reference = batch_oracle.random_campaign(6, seed=5,
                                                 pipeline=False)
        streamed = campaign.random_campaign(6, seed=5, pipeline=False)
        assert strip_wall(streamed.records) == strip_wall(reference.records)
        assert all(isinstance(run.trace, StoredTrace)
                   for run in campaign.golden_runs().values())


class TestWarmColdCacheEquivalence:
    """Cold runs spool + persist; warm runs re-map without simulating."""

    @pytest.mark.parametrize("streaming_training", [True, False])
    def test_warm_start_matches_cold(self, tmp_path, monkeypatch,
                                     streaming_training):
        cache = tmp_path / f"cache-{streaming_training}"
        cold = Campaign(small_scenarios(), CampaignConfig(),
                        cache_dir=cache, trace_store=True)
        cold_result = cold.bayesian_campaign(
            top_k=6, streaming_training=streaming_training)
        assert list(cache.glob("golden-*.json.gz"))
        assert list(cache.glob("traces-*/*.npy"))

        warm = Campaign(small_scenarios(), CampaignConfig(),
                        cache_dir=cache, trace_store=True)

        def no_resimulation(*args, **kwargs):
            raise AssertionError("warm start must not re-simulate")

        import repro.core.campaign as campaign_module
        import repro.core.parallel as parallel_module
        monkeypatch.setattr(campaign_module, "run_scenario",
                            no_resimulation)
        monkeypatch.setattr(parallel_module, "run_scenario",
                            no_resimulation)
        warm_result = warm.bayesian_campaign(
            top_k=6, streaming_training=streaming_training)
        assert candidate_keys(warm_result.candidates) == \
            candidate_keys(cold_result.candidates)
        assert strip_wall(warm_result.summary.records) == \
            strip_wall(cold_result.summary.records)
        # ...and the warm goldens really are re-mapped store handles.
        golden = warm._golden or warm._golden_shard
        assert all(isinstance(run.trace, StoredTrace)
                   for run in golden.values())

    def test_store_adopts_inline_cache(self, tmp_path, monkeypatch):
        """A store-enabled campaign warm-starting from a cache written
        *without* a store spools the inline traces and rewrites the
        cache with references — the memory bound survives migration."""
        import gzip as gzip_module
        import json
        cache = tmp_path / "cache"
        cold = Campaign(small_scenarios(), CampaignConfig(),
                        cache_dir=cache)
        cold_result = cold.random_campaign(6, seed=5)

        warm = Campaign(small_scenarios(), CampaignConfig(),
                        cache_dir=cache, trace_store=True)

        def no_resimulation(*args, **kwargs):
            raise AssertionError("warm start must not re-simulate")

        import repro.core.campaign as campaign_module
        import repro.core.parallel as parallel_module
        monkeypatch.setattr(campaign_module, "run_scenario",
                            no_resimulation)
        monkeypatch.setattr(parallel_module, "run_scenario",
                            no_resimulation)
        warm_result = warm.random_campaign(6, seed=5)
        assert strip_wall(warm_result.records) == \
            strip_wall(cold_result.records)
        golden = warm._golden or warm._golden_shard
        assert all(isinstance(run.trace, StoredTrace)
                   for run in golden.values())
        # The cache file now references the spool instead of holding
        # inline columns, so the next warm start re-maps files.
        cache_file = next(cache.glob("golden-*.json.gz"))
        payload = json.loads(gzip_module.decompress(
            cache_file.read_bytes()))
        assert all("trace_ref" in run
                   for run in payload["runs"].values())

    def test_flag_off_reads_reference_cache(self, tmp_path, monkeypatch):
        """Dropping --trace-store after a store-enabled run must not
        discard the cache: references resolve against the spool the
        previous run left under cache_dir, and the oracle path gets
        in-RAM traces back."""
        from repro.sim import Trace
        cache = tmp_path / "cache"
        cold = Campaign(small_scenarios(), CampaignConfig(),
                        cache_dir=cache, trace_store=True)
        cold_result = cold.random_campaign(6, seed=5)

        warm = Campaign(small_scenarios(), CampaignConfig(),
                        cache_dir=cache)

        def no_resimulation(*args, **kwargs):
            raise AssertionError("warm start must not re-simulate")

        import repro.core.campaign as campaign_module
        import repro.core.parallel as parallel_module
        monkeypatch.setattr(campaign_module, "run_scenario",
                            no_resimulation)
        monkeypatch.setattr(parallel_module, "run_scenario",
                            no_resimulation)
        warm_result = warm.random_campaign(6, seed=5)
        assert strip_wall(warm_result.records) == \
            strip_wall(cold_result.records)
        golden = warm._golden or warm._golden_shard
        assert all(isinstance(run.trace, Trace)
                   for run in golden.values())

    def test_legacy_plain_json_cache_still_warm_starts(self, tmp_path,
                                                       monkeypatch):
        """Caches written before the gzip switch (golden-<fp>.json) are
        read once, then migrated to the current format."""
        from repro.core.persistence import save_golden_traces
        cache = tmp_path / "cache"
        cold = Campaign(small_scenarios(), CampaignConfig(),
                        cache_dir=cache)
        cold_result = cold.random_campaign(6, seed=5)
        gz_path = next(cache.glob("golden-*.json.gz"))
        legacy_path = gz_path.with_name(gz_path.name.removesuffix(".gz"))
        save_golden_traces(cold.golden_runs(), legacy_path,
                           cold._fingerprint())
        gz_path.unlink()

        warm = Campaign(small_scenarios(), CampaignConfig(),
                        cache_dir=cache)

        def no_resimulation(*args, **kwargs):
            raise AssertionError("legacy cache must warm-start")

        import repro.core.campaign as campaign_module
        import repro.core.parallel as parallel_module
        monkeypatch.setattr(campaign_module, "run_scenario",
                            no_resimulation)
        monkeypatch.setattr(parallel_module, "run_scenario",
                            no_resimulation)
        warm_result = warm.random_campaign(6, seed=5)
        assert strip_wall(warm_result.records) == \
            strip_wall(cold_result.records)
        assert gz_path.exists()        # migrated to the current format
        assert not legacy_path.exists()   # ...and the legacy file is gone
