"""Tests for the extended scenario library (merging, pedestrian)."""

from dataclasses import replace

import pytest

from repro.ads import ADSConfig, PlannerConfig
from repro.core import Hazard, run_scenario
from repro.sim import crossing_pedestrian, merging_traffic


class TestMergingTraffic:
    def test_builds_and_runs(self):
        result = run_scenario(merging_traffic(), seed=0)
        assert result.hazard is Hazard.NONE

    def test_merger_changes_lane(self):
        world = merging_traffic(merge_time=1.0).make_world()
        start_y = world.npcs[0].y
        for _ in range(120):
            world.step(0.0, 0.0, 0.0, 0.05)
        assert world.npcs[0].y > start_y + 2.0


class TestCrossingPedestrian:
    def test_pedestrian_crosses_all_lanes(self):
        world = crossing_pedestrian(cross_time=0.5).make_world()
        for _ in range(250):
            world.step(0.0, 0.0, 0.0, 0.05)
        assert world.npcs[0].y > world.road.width

    def test_pedestrian_is_small(self):
        world = crossing_pedestrian().make_world()
        obstacle = world.obstacles()[0]
        assert obstacle.width < 1.0
        assert obstacle.length < 1.0

    def test_urban_speed_stack_avoids_pedestrian(self):
        """At urban cruise speed the stack must brake for the crossing."""
        config = ADSConfig(planner=PlannerConfig(cruise_speed=14.0))
        scenario = crossing_pedestrian(ego_speed=14.0, cross_x=110.0,
                                       cross_time=1.0)
        result = run_scenario(scenario, ads_config=config, seed=0)
        assert not result.collided
