"""Tests for the extended scenario library (merging, pedestrian) and the
scripted scenegen templates (overtake cut-in, queue, occluded crossing)."""

from dataclasses import replace

import pytest

from repro.ads import ADSConfig, PlannerConfig
from repro.core import Hazard, run_scenario
from repro.sim import (crossing_pedestrian, merging_traffic,
                       occluded_pedestrian, overtake_cutin, queued_traffic,
                       scripted_templates)


class TestMergingTraffic:
    def test_builds_and_runs(self):
        result = run_scenario(merging_traffic(), seed=0)
        assert result.hazard is Hazard.NONE

    def test_merger_changes_lane(self):
        world = merging_traffic(merge_time=1.0).make_world()
        start_y = world.npcs[0].y
        for _ in range(120):
            world.step(0.0, 0.0, 0.0, 0.05)
        assert world.npcs[0].y > start_y + 2.0


class TestCrossingPedestrian:
    def test_pedestrian_crosses_all_lanes(self):
        world = crossing_pedestrian(cross_time=0.5).make_world()
        for _ in range(250):
            world.step(0.0, 0.0, 0.0, 0.05)
        assert world.npcs[0].y > world.road.width

    def test_pedestrian_is_small(self):
        world = crossing_pedestrian().make_world()
        obstacle = world.obstacles()[0]
        assert obstacle.width < 1.0
        assert obstacle.length < 1.0

    def test_urban_speed_stack_avoids_pedestrian(self):
        """At urban cruise speed the stack must brake for the crossing."""
        config = ADSConfig(planner=PlannerConfig(cruise_speed=14.0))
        scenario = crossing_pedestrian(ego_speed=14.0, cross_x=110.0,
                                       cross_time=1.0)
        result = run_scenario(scenario, ads_config=config, seed=0)
        assert not result.collided


class TestScriptedTemplates:
    """The scenegen templates campaigns and benches register."""

    @pytest.mark.parametrize("factory", [overtake_cutin, queued_traffic,
                                         occluded_pedestrian])
    def test_golden_run_is_hazard_free(self, factory):
        result = run_scenario(factory(), seed=0)
        assert result.hazard is Hazard.NONE, factory.__name__

    @pytest.mark.parametrize("factory", [overtake_cutin, queued_traffic,
                                         occluded_pedestrian])
    def test_truncated_bench_duration_stays_safe(self, factory):
        """Benches run the templates truncated to 20 s."""
        result = run_scenario(replace(factory(), duration=20.0), seed=0)
        assert result.hazard is Hazard.NONE, factory.__name__

    def test_template_names_unique_and_registered(self):
        templates = scripted_templates()
        names = [t.name for t in templates]
        assert len(set(names)) == len(names) == 3

    def test_overtaker_reaches_ego_lane(self):
        world = overtake_cutin(cutin_time=1.0).make_world()
        ego_lane_y = world.road.lane_center(1)
        start_y = world.npcs[1].y
        for _ in range(120):
            world.step(0.0, 0.0, 0.0, 0.05)
        assert abs(world.npcs[1].y - ego_lane_y) < abs(start_y - ego_lane_y)

    def test_queue_compresses(self):
        """Queue members near-stop during the scripted accordion wave."""
        world = queued_traffic().make_world()
        slowest = float("inf")
        for _ in range(600):
            world.step(0.0, 0.0, 0.0, 0.05)
            slowest = min(slowest, min(npc.v for npc in world.npcs))
        assert slowest < 3.0

    def test_occluded_pedestrian_enters_roadway(self):
        world = occluded_pedestrian(cross_time=0.5).make_world()
        pedestrian = world.npcs[1]
        assert pedestrian.y < 0.0   # starts off-road
        for _ in range(250):
            world.step(0.0, 0.0, 0.0, 0.05)
        assert pedestrian.y > 0.0   # crossing the lanes
