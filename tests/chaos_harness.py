"""Chaos harness: inject faults into the fault injector itself.

The resilience layer (:mod:`repro.core.resilience`) claims a campaign
survives worker SIGKILLs, failing cache/journal writes, corrupted
journal segments, and whole-driver kills.  This module is the fault
injector *for those claims*: context managers that arm each disturbance
through the sanctioned chaos ports —

* :func:`chaos_worker_kills` — the ``REPRO_CHAOS_KILL`` environment
  variable, read once per (re)spawned pool worker, makes workers
  SIGKILL themselves around job execution with a seeded probability;
* :func:`failing_writes` — installs an :func:`repro.core.ioutil
  .set_write_fault_hook` that raises ``OSError`` for matching atomic
  writes (journal segments, lease files, cache artifacts);
* :func:`corrupt_journal` — truncates and scribbles over journal
  segments on disk, the bit-rot / torn-write case;
* :func:`run_driver_killed` — runs a campaign in a subprocess that
  SIGKILLs *itself* (the whole driver, not a worker) after a given
  number of emitted records: no cleanup handlers run, so whatever
  resume finds on disk is exactly what durability guaranteed;
* :func:`start_service` / :func:`service_spec` — a real ``repro
  serve`` subprocess over the standard small scenario set, for killing
  the *service host* mid-campaign and asserting the restarted server
  resumes every job bit-for-bit.

The equivalence-under-chaos suite (``tests/test_chaos_equivalence.py``)
runs every campaign style under these disturbances and asserts the
record stream is identical to the undisturbed serial oracle.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from contextlib import contextmanager
from pathlib import Path

from repro.core.ioutil import set_write_fault_hook
from repro.core.resilience import CHAOS_KILL_ENV

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


@contextmanager
def chaos_worker_kills(probability: float, seed: int = 0):
    """Arm worker self-SIGKILL for pool workers spawned inside.

    Workers read ``REPRO_CHAOS_KILL`` once at start; each respawn
    draws a fresh pid-seeded sequence, so a retried job is not doomed
    to die forever and bounded retries converge.
    """
    previous = os.environ.get(CHAOS_KILL_ENV)
    os.environ[CHAOS_KILL_ENV] = f"{probability}:{seed}"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(CHAOS_KILL_ENV, None)
        else:
            os.environ[CHAOS_KILL_ENV] = previous


@contextmanager
def failing_writes(substring: str, fail_first: int | None = None):
    """Fail atomic writes whose target path contains ``substring``.

    ``fail_first`` bounds the number of injected failures (``None``
    fails every matching write).  Only the installing process is
    affected — pool workers have their own (unset) hook, mirroring a
    driver-host disk fault.
    """
    state = {"failed": 0}

    def hook(path: Path) -> None:
        if substring not in str(path):
            return
        if fail_first is not None and state["failed"] >= fail_first:
            return
        state["failed"] += 1
        raise OSError(28, f"chaos: no space left writing {path.name}")

    set_write_fault_hook(hook)
    try:
        yield state
    finally:
        set_write_fault_hook(None)


def corrupt_journal(directory: str | Path, truncate_last: bool = True,
                    scribble_first: bool = True) -> int:
    """Damage journal segments in place; returns segments touched.

    Truncation models a torn write (half a JSON line survives);
    scribbling models bit rot.  Resume must skip the damaged entries
    and re-execute those experiments — never crash, never fabricate.
    """
    segments = sorted(Path(directory).glob("seg-*.jsonl"))
    touched = 0
    if truncate_last and segments:
        data = segments[-1].read_bytes()
        segments[-1].write_bytes(data[:max(1, len(data) // 2)])
        touched += 1
    if scribble_first and segments:
        segments[0].write_bytes(b"\x00\xffnot json{{{\n")
        touched += 1
    return touched


_DRIVER_TEMPLATE = """
import os, signal, sys
sys.path.insert(0, {src!r})
from dataclasses import replace
from repro.core import Campaign, CampaignConfig, ResilienceConfig
from repro.sim import highway_cruise, lead_vehicle_cutin, queued_traffic

def scenarios():
    return [replace(highway_cruise(), duration=24.0),
            replace(lead_vehicle_cutin(), duration=16.0),
            replace(queued_traffic(), duration=18.0)]

count = 0
def kill_after(event):
    global count
    if event.stage != "validated":
        return
    count += 1
    if count >= {kill_after}:
        os.kill(os.getpid(), signal.SIGKILL)   # no cleanup, no atexit

config = CampaignConfig(resilience=ResilienceConfig({resilience_kwargs}))
campaign = Campaign(scenarios(), config, cache_dir={cache_dir!r})
campaign.{invoke}
print("UNEXPECTED: campaign survived its own SIGKILL", file=sys.stderr)
sys.exit(3)
"""


#: The chaos suite's standard small scenario set, as service spec
#: entries — mirrors ``_DRIVER_TEMPLATE`` / ``small_scenarios()`` so
#: service campaigns share cache keys with the in-test oracle.
SERVICE_SCENARIOS = (("highway_cruise", 24.0),
                     ("lead_vehicle_cutin", 16.0),
                     ("queued_traffic", 18.0))


def service_spec(n: int = 10, seed: int = 11, **extra) -> dict:
    """A random-campaign submission over the standard small set."""
    return {"style": "random", "params": {"n": n, "seed": seed},
            "scenarios": [{"name": name, "duration": duration}
                          for name, duration in SERVICE_SCENARIOS],
            **extra}


def start_service(cache_dir: str | Path, *extra_args: str,
                  env: dict | None = None):
    """Start a ``repro serve`` subprocess; returns ``(proc, port)``.

    The server picks a free port and prints it; stdout is consumed up
    to that line.  The caller owns the process — SIGKILL it to model a
    crashed host, SIGTERM it for a graceful drain.
    """
    environ = {**os.environ, "PYTHONPATH": SRC_DIR}
    environ.update(env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--cache-dir", str(cache_dir), "--port", "0", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env=environ)
    assert proc.stdout is not None
    line = proc.stdout.readline()
    try:
        port = int(line.strip().rsplit(":", 1)[1])
    except (IndexError, ValueError):
        proc.kill()
        raise RuntimeError(f"service did not report a port: {line!r}")
    return proc, port


def run_driver_killed(cache_dir: str | Path, invoke: str,
                      kill_after: int,
                      resilience_kwargs: str = "") -> int:
    """Run a campaign subprocess that SIGKILLs itself mid-stream.

    ``invoke`` is the campaign call, e.g.
    ``"random_campaign(12, seed=3, on_progress=kill_after)"`` — it must
    thread the provided ``kill_after`` progress hook.  Returns the
    subprocess return code (``-SIGKILL`` on the expected death).  The
    scenario population is the chaos suite's standard small set, so the
    in-test resume run reuses the same cache keys.
    """
    script = _DRIVER_TEMPLATE.format(
        src=SRC_DIR, cache_dir=str(cache_dir), kill_after=kill_after,
        invoke=invoke, resilience_kwargs=resilience_kwargs)
    result = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(script)],
        capture_output=True, text=True, timeout=600)
    return result.returncode
