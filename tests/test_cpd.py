"""Tests for tabular and linear-Gaussian CPDs."""

import numpy as np
import pytest

from repro.bayesnet import LinearGaussianCPD, TabularCPD


class TestTabularCPD:
    def test_columns_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TabularCPD("x", 2, [[0.5], [0.6]])

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            TabularCPD("x", 2, [[0.5, 0.5]], parents=["p"], parent_cards=[2])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TabularCPD("x", 2, [[-0.5], [1.5]])

    def test_parents_cards_mismatch(self):
        with pytest.raises(ValueError):
            TabularCPD("x", 2, np.full((2, 2), 0.5), parents=["p"],
                       parent_cards=[2, 2])

    def test_probability_no_parents(self):
        cpd = TabularCPD("x", 3, [[0.2], [0.3], [0.5]])
        assert cpd.probability(2) == pytest.approx(0.5)

    def test_probability_with_parents_column_order(self):
        # Columns enumerate parents row-major: (p=0,q=0),(p=0,q=1),(p=1,0),(p=1,1)
        table = np.array([[0.1, 0.2, 0.3, 0.4],
                          [0.9, 0.8, 0.7, 0.6]])
        cpd = TabularCPD("x", 2, table, parents=["p", "q"],
                         parent_cards=[2, 2])
        assert cpd.probability(0, {"p": 1, "q": 0}) == pytest.approx(0.3)
        assert cpd.probability(1, {"p": 0, "q": 1}) == pytest.approx(0.8)

    def test_parent_state_out_of_range(self):
        cpd = TabularCPD("x", 2, np.full((2, 2), 0.5), parents=["p"],
                         parent_cards=[2])
        with pytest.raises(IndexError):
            cpd.probability(0, {"p": 7})

    def test_point_mass(self):
        cpd = TabularCPD.point_mass("x", 4, 2)
        assert cpd.probability(2) == 1.0
        assert cpd.probability(0) == 0.0

    def test_uniform(self):
        cpd = TabularCPD.uniform("x", 4, parents=["p"], parent_cards=[3])
        assert cpd.table.shape == (4, 3)
        assert np.allclose(cpd.table, 0.25)

    def test_to_factor_round_trip(self):
        table = np.array([[0.1, 0.6], [0.9, 0.4]])
        cpd = TabularCPD("x", 2, table, parents=["p"], parent_cards=[2])
        factor = cpd.to_factor()
        assert factor.get({"x": 0, "p": 1}) == pytest.approx(0.6)

    def test_sample_respects_distribution(self):
        rng = np.random.default_rng(0)
        cpd = TabularCPD("x", 2, [[0.9], [0.1]])
        draws = [cpd.sample(rng) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(0.1, abs=0.03)


class TestLinearGaussianCPD:
    def test_weight_count_enforced(self):
        with pytest.raises(ValueError):
            LinearGaussianCPD("x", 0.0, 1.0, parents=["a", "b"],
                              weights=[1.0])

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            LinearGaussianCPD("x", 0.0, -1.0)

    def test_mean_is_linear(self):
        cpd = LinearGaussianCPD("x", 1.0, 0.5, parents=["a", "b"],
                                weights=[2.0, -1.0])
        assert cpd.mean({"a": 3.0, "b": 4.0}) == pytest.approx(1 + 6 - 4)

    def test_sample_statistics(self):
        rng = np.random.default_rng(1)
        cpd = LinearGaussianCPD("x", 5.0, 4.0)
        draws = np.array([cpd.sample(rng) for _ in range(4000)])
        assert draws.mean() == pytest.approx(5.0, abs=0.15)
        assert draws.std() == pytest.approx(2.0, abs=0.15)

    def test_zero_variance_sample_is_deterministic(self):
        rng = np.random.default_rng(2)
        cpd = LinearGaussianCPD("x", 3.0, 0.0)
        assert cpd.sample(rng) == pytest.approx(3.0)
