"""The out-of-core trace spool and the golden-cache formats around it.

A :class:`repro.sim.TraceStore` spools completed traces to
memory-mapped columnar files; a :class:`repro.sim.StoredTrace` handle
must serve every read of the in-RAM :class:`repro.sim.Trace` API with
bit-for-bit identical values (non-finite floats included), pickle as
just its path, and stay read-only.  The golden-trace JSON caches gain
transparent gzip compression and, with a store attached, per-scenario
trace references instead of inline columns — both round-trip exactly
and degrade to cache misses, never errors.
"""

import gzip
import json
import math
import pickle

import numpy as np
import pytest

from repro.core import Campaign, CampaignConfig
from repro.core.persistence import (config_fingerprint, load_golden_traces,
                                    save_golden_traces)
from repro.sim import StoredTrace, Trace, TraceStore
from repro.sim.scenario import lead_vehicle_cutin


def sample_trace(rows: int = 6) -> Trace:
    trace = Trace()
    for i in range(rows):
        trace.record({
            "tick": float(i),
            "v": 20.0 + 0.5 * i,
            "delta_long": math.inf if i == 0 else 3.0 - i,
            "delta_lat": math.nan if i == 3 else 1.25,
            "steering": -0.01 * i,
        })
    return trace


class TestTraceStoreRoundTrip:
    def test_values_bit_for_bit(self, tmp_path):
        trace = sample_trace()
        stored = TraceStore(tmp_path).put("cutin", trace)
        assert len(stored) == len(trace)
        assert stored.columns == trace.columns
        reference = trace.as_arrays()
        arrays = stored.as_arrays()
        for name, array in reference.items():
            assert np.array_equal(arrays[name], array, equal_nan=True)
            assert np.array_equal(stored.column(name), array,
                                  equal_nan=True)

    def test_views_are_read_only(self, tmp_path):
        stored = TraceStore(tmp_path).put("cutin", sample_trace())
        for array in stored.as_arrays().values():
            assert not array.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            stored.column("v")[0] = 99.0

    def test_window_and_last(self, tmp_path):
        trace = sample_trace()
        stored = TraceStore(tmp_path).put("cutin", trace)
        window = stored.window(1, 4)
        reference = trace.window(1, 4)
        for name, array in reference.items():
            assert np.array_equal(window[name], array, equal_nan=True)
        assert stored.last("v") == trace.last("v")

    def test_handle_pickles_as_path(self, tmp_path):
        stored = TraceStore(tmp_path).put("cutin", sample_trace())
        clone = pickle.loads(pickle.dumps(stored))
        assert np.array_equal(clone.column("delta_lat"),
                              stored.column("delta_lat"), equal_nan=True)
        # The payload is the path, not the samples.
        assert len(pickle.dumps(stored)) < 500

    def test_empty_trace(self, tmp_path):
        stored = TraceStore(tmp_path).put("empty", Trace())
        assert len(stored) == 0
        assert stored.columns == []
        assert stored.as_arrays() == {}
        with pytest.raises(IndexError):
            stored.last("v")

    def test_materialize_to_trace(self, tmp_path):
        trace = sample_trace()
        copied = TraceStore(tmp_path).put("cutin", trace).to_trace()
        assert isinstance(copied, Trace)
        for name in trace.columns:
            reference = trace.column(name)
            assert np.array_equal(copied.column(name), reference,
                                  equal_nan=True)

    def test_get_and_has(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.get("missing") is None
        assert "missing" not in store
        store.put("cutin", sample_trace())
        assert "cutin" in store
        assert isinstance(store.get("cutin"), StoredTrace)

    def test_reput_self_heals_corrupt_spool(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = sample_trace()
        store.put("cutin", trace)
        (tmp_path / "cutin.npy").write_bytes(b"torn write")
        healed = store.put("cutin", trace)
        assert np.array_equal(healed.column("v"), trace.column("v"))

    def test_rejects_path_like_names(self, tmp_path):
        store = TraceStore(tmp_path)
        with pytest.raises(ValueError):
            store.put("../escape", sample_trace())

    def test_temp_spool_survives_campaign_collection(self):
        """Handles returned by a tempdir-spooled campaign keep the
        spool alive after the campaign itself is collected."""
        import gc
        from dataclasses import replace
        campaign = Campaign([replace(lead_vehicle_cutin(),
                                     duration=12.0)],
                            CampaignConfig(), trace_store=True)
        runs = campaign.golden_runs()
        del campaign
        gc.collect()
        run = next(iter(runs.values()))
        assert isinstance(run.trace, StoredTrace)
        assert len(run.trace.column("tick")) == len(run.trace)

    def test_put_accepts_stored_trace(self, tmp_path):
        trace = sample_trace()
        first = TraceStore(tmp_path / "a").put("cutin", trace)
        second = TraceStore(tmp_path / "b").put("cutin", first)
        assert np.array_equal(second.column("delta_long"),
                              trace.column("delta_long"))


@pytest.fixture(scope="module")
def golden_runs():
    from dataclasses import replace
    campaign = Campaign([replace(lead_vehicle_cutin(), duration=14.0)],
                        CampaignConfig())
    return campaign, campaign.golden_runs()


class TestGoldenCacheGzip:
    """save/load_golden_traces: transparent ``.gz`` + store references."""

    def fingerprint(self, campaign) -> str:
        return config_fingerprint(
            campaign.config.ads, campaign.config.safety,
            campaign.config.seed,
            ((s.name, s.duration) for s in campaign.scenarios))

    def assert_runs_equal(self, loaded, reference):
        assert loaded is not None
        assert list(loaded) == list(reference)
        for name, run in reference.items():
            restored = loaded[name]
            assert restored.hazard == run.hazard
            assert restored.min_delta_long == run.min_delta_long
            for column in run.trace.columns:
                assert np.array_equal(restored.trace.column(column),
                                      run.trace.column(column),
                                      equal_nan=True)

    def test_gzip_round_trip_equals_plain(self, tmp_path, golden_runs):
        campaign, runs = golden_runs
        fingerprint = self.fingerprint(campaign)
        plain = tmp_path / "golden.json"
        packed = tmp_path / "golden.json.gz"
        save_golden_traces(runs, plain, fingerprint)
        save_golden_traces(runs, packed, fingerprint)
        # It really is gzip on disk, and it really is smaller.
        with gzip.open(packed, "rt", encoding="utf-8") as stream:
            assert json.load(stream)["fingerprint"] == fingerprint
        assert packed.stat().st_size < plain.stat().st_size / 2
        self.assert_runs_equal(load_golden_traces(packed, fingerprint),
                               runs)
        # Deterministic bytes: concurrent shard writers stay identical.
        payload = packed.read_bytes()
        save_golden_traces(runs, packed, fingerprint)
        assert packed.read_bytes() == payload

    def test_gzip_stale_or_corrupt_is_a_miss(self, tmp_path, golden_runs):
        campaign, runs = golden_runs
        path = tmp_path / "golden.json.gz"
        save_golden_traces(runs, path, "fp-old")
        assert load_golden_traces(path, "fp-new") is None
        path.write_bytes(b"definitely not gzip")
        assert load_golden_traces(path, "fp-old") is None

    def test_store_references_round_trip(self, tmp_path, golden_runs):
        campaign, runs = golden_runs
        fingerprint = self.fingerprint(campaign)
        store = TraceStore(tmp_path / "traces")
        path = tmp_path / "golden.json.gz"
        save_golden_traces(runs, path, fingerprint, trace_store=store)
        # The JSON holds references; the samples live in the spool.
        for scenario in runs:
            assert store.has(scenario)
        loaded = load_golden_traces(path, fingerprint, trace_store=store)
        self.assert_runs_equal(loaded, runs)
        assert all(isinstance(run.trace, StoredTrace)
                   for run in loaded.values())

    def test_reference_without_store_is_a_miss(self, tmp_path,
                                               golden_runs):
        campaign, runs = golden_runs
        fingerprint = self.fingerprint(campaign)
        store = TraceStore(tmp_path / "traces")
        path = tmp_path / "golden.json.gz"
        save_golden_traces(runs, path, fingerprint, trace_store=store)
        assert load_golden_traces(path, fingerprint) is None


class TestTraceCSVEdgeCases:
    def test_empty_trace_round_trips(self):
        text = Trace().to_csv()
        restored = Trace.from_csv(text)
        assert len(restored) == 0
        assert restored.columns == []

    def test_ragged_row_is_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            Trace.from_csv("a,b\n1.0,2.0\n3.0\n")

    def test_header_only_duplicate_column_is_rejected(self):
        """A duplicate header would silently collapse into one column."""
        with pytest.raises(ValueError, match="repeats"):
            Trace.from_csv("a,b,a\n")

    def test_duplicate_column_with_rows_is_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            Trace.from_csv("a,b,a\n1.0,2.0,3.0\n")

    def test_ragged_columns_rejected_by_from_columns(self):
        with pytest.raises(ValueError, match="ragged"):
            Trace.from_columns({"a": [1.0, 2.0], "b": [1.0]})
