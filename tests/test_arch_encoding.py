"""Tests for instruction encoding and instruction-memory fault injection."""

import numpy as np
import pytest

from repro.arch import (ArchitecturalInjector, Interpreter, MemoryModel,
                        TrapError, decode_instruction, dot_kernel,
                        encode_instruction, encode_program,
                        flip_instruction_bit, kalman_kernel,
                        random_instruction_flip)
from repro.arch.isa import Instruction


class TestEncodeDecode:
    def test_round_trip_arithmetic(self):
        instr = Instruction(op="ADD", dst=3, a=4, b=5)
        decoded = decode_instruction(encode_instruction(instr))
        assert decoded.op == "ADD"
        assert (decoded.dst, decoded.a, decoded.b) == (3, 4, 5)

    def test_round_trip_immediate(self):
        instr = Instruction(op="LI", dst=7, imm=3.5)
        decoded = decode_instruction(encode_instruction(instr))
        assert decoded.imm == pytest.approx(3.5)

    def test_round_trip_jump_target(self):
        instr = Instruction(op="JMP", target=12)
        decoded = decode_instruction(encode_instruction(instr))
        assert decoded.target == 12

    def test_every_kernel_round_trips(self):
        for kernel in (dot_kernel(4), kalman_kernel()):
            program = kernel.program
            words = encode_program(program)
            decoded = [decode_instruction(w) for w in words]
            for original, copy in zip(program.instructions, decoded):
                assert original.op == copy.op

    def test_illegal_opcode_byte_traps(self):
        with pytest.raises(TrapError):
            decode_instruction(0xFF)

    def test_register_out_of_range_traps(self):
        # dst byte = 40 with a valid opcode.
        word = encode_instruction(Instruction(op="MOV", dst=0, a=1))
        word |= 40 << 8
        with pytest.raises(TrapError):
            decode_instruction(word)


class TestRoundTripExecution:
    def test_reencoded_program_computes_same_result(self):
        kernel = dot_kernel(6)
        rng = np.random.default_rng(0)
        inputs = kernel.make_inputs(rng)
        injector = ArchitecturalInjector(kernel)
        golden, _ = injector.golden_run(inputs)

        words = encode_program(kernel.program)
        decoded = [decode_instruction(w) for w in words]
        from repro.arch.isa import Program
        program = Program(instructions=decoded,
                          input_base=kernel.program.input_base,
                          input_length=kernel.program.input_length,
                          output_base=kernel.program.output_base,
                          output_length=kernel.program.output_length)
        memory = MemoryModel(kernel.memory_size)
        memory.write_block(program.input_base, inputs)
        Interpreter(memory).run(program)
        outputs = memory.read_block(program.output_base,
                                    program.output_length)
        assert np.allclose(outputs, golden)


class TestInstructionFlips:
    def test_flip_twice_restores(self):
        program = dot_kernel(4).program
        flipped = flip_instruction_bit(program, 2, 17)
        restored = flip_instruction_bit(flipped, 2, 17)
        for a, b in zip(program.instructions, restored.instructions):
            assert a.op == b.op

    def test_opcode_flip_can_trap(self):
        program = dot_kernel(4).program
        trapped = 0
        for bit in range(8):
            try:
                flip_instruction_bit(program, 0, bit)
            except TrapError:
                trapped += 1
        assert trapped > 0

    def test_register_field_flip_changes_dataflow(self):
        kernel = dot_kernel(4)
        rng = np.random.default_rng(1)
        inputs = kernel.make_inputs(rng)
        injector = ArchitecturalInjector(kernel)
        golden, _ = injector.golden_run(inputs)
        # Flip a dst-register bit of the multiply instruction.
        flipped = flip_instruction_bit(kernel.program, 5, 8)
        memory = MemoryModel(kernel.memory_size)
        memory.write_block(kernel.program.input_base, inputs)
        try:
            Interpreter(memory, instruction_budget=100000).run(flipped)
            outputs = memory.read_block(kernel.program.output_base,
                                        kernel.program.output_length)
            assert not np.allclose(outputs, golden)  # SDC
        except Exception:
            pass  # crash/hang is an equally valid manifestation

    def test_random_flip_bounds(self):
        program = dot_kernel(4).program
        rng = np.random.default_rng(2)
        outcomes = {"ok": 0, "trap": 0}
        for _ in range(50):
            try:
                random_instruction_flip(program, rng)
                outcomes["ok"] += 1
            except TrapError:
                outcomes["trap"] += 1
        assert outcomes["ok"] > 0
        assert outcomes["trap"] > 0

    def test_bad_indices(self):
        program = dot_kernel(4).program
        with pytest.raises(IndexError):
            flip_instruction_bit(program, 999, 0)
        with pytest.raises(ValueError):
            flip_instruction_bit(program, 0, 64)
