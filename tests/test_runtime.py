"""Tests for the ADS runtime: closed-loop behavior and fault hooks."""

import numpy as np
import pytest

from repro.ads import ADSConfig, ADSPipeline, variable_by_name
from repro.sim import (NPCVehicle, World, highway_cruise,
                       lead_vehicle_cutin)


def run_closed_loop(world, pipeline, duration):
    """Step the world under ADS control; returns per-tick speed history."""
    dt = pipeline.config.control_period
    speeds = []
    for _ in range(int(duration / dt)):
        command = pipeline.tick(world)
        world.step(command.throttle, command.brake, command.steering, dt)
        speeds.append(world.ego.state.v)
        if world.in_collision():
            break
    return speeds


class TestClosedLoop:
    def test_reaches_cruise_on_empty_road(self):
        world = World.on_highway(ego_speed=20.0)
        pipeline = ADSPipeline(seed=0)
        speeds = run_closed_loop(world, pipeline, duration=30.0)
        assert speeds[-1] == pytest.approx(
            pipeline.config.planner.cruise_speed, abs=1.5)

    def test_car_following_no_collision(self):
        scenario = highway_cruise(ego_speed=30.0, lead_gap=40.0,
                                  lead_speed=24.0)
        world = scenario.make_world()
        pipeline = ADSPipeline(seed=1)
        run_closed_loop(world, pipeline, duration=30.0)
        assert not world.in_collision()
        assert world.longitudinal_d_safe() > 2.0

    def test_follows_at_headway(self):
        scenario = highway_cruise(ego_speed=28.0, lead_gap=50.0,
                                  lead_speed=24.0)
        world = scenario.make_world()
        pipeline = ADSPipeline(seed=2)
        run_closed_loop(world, pipeline, duration=40.0)
        gap = world.longitudinal_d_safe()
        expected = (pipeline.config.planner.min_gap
                    + 24.0 * pipeline.config.planner.time_headway)
        assert gap == pytest.approx(expected, rel=0.45)

    def test_cutin_handled_without_collision(self):
        world = lead_vehicle_cutin().make_world()
        pipeline = ADSPipeline(seed=3)
        run_closed_loop(world, pipeline, duration=20.0)
        assert not world.in_collision()

    def test_stays_in_lane(self):
        world = World.on_highway(ego_speed=25.0, ego_lane=1)
        pipeline = ADSPipeline(seed=4)
        run_closed_loop(world, pipeline, duration=20.0)
        lane_center = world.road.lane_center(1)
        assert abs(world.ego.state.y - lane_center) < 0.5

    def test_planner_divisor_schedules_planning(self):
        world = World.on_highway(ego_speed=25.0)
        pipeline = ADSPipeline(ADSConfig(planner_divisor=4), seed=5)
        plans = []
        for _ in range(8):
            pipeline.tick(world)
            plans.append(pipeline.last_plan)
            world.step(0.0, 0.0, 0.0, pipeline.config.control_period)
        # Planning happened on ticks 0 and 4 only: identical objects between.
        assert plans[0] is plans[1] is plans[2] is plans[3]
        assert plans[4] is plans[5]
        assert plans[0] is not plans[4]


class TestFaultHooks:
    def test_actuation_fault_lands(self):
        world = World.on_highway(ego_speed=25.0)
        pipeline = ADSPipeline(seed=0)
        fault = pipeline.arm_fault("throttle", 1.0, start_tick=0,
                                   duration_ticks=1)
        command = pipeline.tick(world)
        assert command.throttle == 1.0
        assert fault.landed

    def test_fault_window_expires(self):
        world = World.on_highway(ego_speed=25.0)
        pipeline = ADSPipeline(seed=0)
        pipeline.arm_fault("brake", 1.0, start_tick=0, duration_ticks=1)
        first = pipeline.tick(world)
        world.step(first.throttle, first.brake, first.steering,
                   pipeline.config.control_period)
        second = pipeline.tick(world)
        assert first.brake == 1.0
        assert second.brake < 1.0

    def test_future_fault_waits(self):
        world = World.on_highway(ego_speed=25.0)
        pipeline = ADSPipeline(seed=0)
        pipeline.arm_fault("throttle", 1.0, start_tick=5, duration_ticks=1)
        command = pipeline.tick(world)
        assert command.throttle < 1.0

    def test_world_model_fault_changes_plan(self):
        scenario = highway_cruise(ego_speed=30.0, lead_gap=40.0,
                                  lead_speed=25.0)
        clean_world = scenario.make_world()
        clean = ADSPipeline(seed=7)
        for _ in range(10):
            command = clean.tick(clean_world)
            clean_world.step(command.throttle, command.brake,
                             command.steering,
                             clean.config.control_period)
        faulty_world = scenario.make_world()
        faulty = ADSPipeline(seed=7)
        faulty.arm_fault("tracked_gap", 250.0, start_tick=8,
                         duration_ticks=2)
        for _ in range(10):
            command = faulty.tick(faulty_world)
            faulty_world.step(command.throttle, command.brake,
                              command.steering,
                              faulty.config.control_period)
        # Believing the lead is 250 m away raises the planned speed.
        assert (faulty.last_plan.target_speed
                >= clean.last_plan.target_speed)

    def test_masked_fault_on_empty_world_model(self):
        world = World.on_highway(ego_speed=25.0)  # no traffic: no lead
        pipeline = ADSPipeline(seed=0)
        fault = pipeline.arm_fault("tracked_gap", 0.0, start_tick=0,
                                   duration_ticks=4)
        for _ in range(4):
            command = pipeline.tick(world)
            world.step(command.throttle, command.brake, command.steering,
                       pipeline.config.control_period)
        assert not fault.landed

    def test_unknown_variable_rejected(self):
        pipeline = ADSPipeline(seed=0)
        with pytest.raises(KeyError):
            pipeline.arm_fault("warp_drive", 1.0, start_tick=0)

    def test_transient_sensing_fault_recovers(self):
        """A one-frame IMU speed spike must not destabilize the loop."""
        world = World.on_highway(ego_speed=25.0)
        pipeline = ADSPipeline(seed=8)
        pipeline.arm_fault("imu_speed", 45.0, start_tick=40,
                           duration_ticks=2)
        speeds = run_closed_loop(world, pipeline, duration=20.0)
        assert not world.in_collision()
        assert speeds[-1] == pytest.approx(
            pipeline.config.planner.cruise_speed, abs=2.0)


class TestVariableRegistry:
    def test_every_variable_stage_valid(self):
        from repro.ads import REGISTRY, STAGES
        for variable in REGISTRY:
            assert variable.stage in STAGES

    def test_min_below_max(self):
        from repro.ads import REGISTRY
        for variable in REGISTRY:
            assert variable.min_value < variable.max_value

    def test_lookup(self):
        assert variable_by_name("throttle").stage == "actuation"
        with pytest.raises(KeyError):
            variable_by_name("nope")

    def test_steering_fault_steers_vehicle(self):
        world = World.on_highway(ego_speed=25.0)
        pipeline = ADSPipeline(seed=9)
        pipeline.arm_fault("steering", 0.55, start_tick=0, duration_ticks=20)
        for _ in range(20):
            command = pipeline.tick(world)
            world.step(command.throttle, command.brake, command.steering,
                       pipeline.config.control_period)
        assert world.ego.state.y > world.road.lane_center(1)
