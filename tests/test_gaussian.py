"""Tests for linear-Gaussian networks and exact Gaussian inference."""

import numpy as np
import pytest

from repro.bayesnet import (GaussianDistribution, GaussianInference,
                            LinearGaussianBayesianNetwork, LinearGaussianCPD)


def chain_lg():
    """x -> y -> z with known closed-form joint."""
    net = LinearGaussianBayesianNetwork(edges=[("x", "y"), ("y", "z")])
    net.add_cpd(LinearGaussianCPD("x", 1.0, 4.0))
    net.add_cpd(LinearGaussianCPD("y", -1.0, 1.0, parents=["x"],
                                  weights=[0.5]))
    net.add_cpd(LinearGaussianCPD("z", 0.0, 2.0, parents=["y"],
                                  weights=[2.0]))
    return net


class TestJointConstruction:
    def test_chain_joint_mean(self):
        order, mean, _ = chain_lg().joint_parameters()
        by_name = dict(zip(order, mean))
        assert by_name["x"] == pytest.approx(1.0)
        assert by_name["y"] == pytest.approx(-0.5)   # -1 + 0.5*1
        assert by_name["z"] == pytest.approx(-1.0)   # 2*-0.5

    def test_chain_joint_covariance(self):
        order, _, cov = chain_lg().joint_parameters()
        i = {v: k for k, v in enumerate(order)}
        # var(y) = 1 + 0.25*4 = 2 ; cov(x,y) = 0.5*4 = 2
        assert cov[i["y"], i["y"]] == pytest.approx(2.0)
        assert cov[i["x"], i["y"]] == pytest.approx(2.0)
        # var(z) = 2 + 4*var(y) = 10 ; cov(x,z) = 2*cov(x,y) = 4
        assert cov[i["z"], i["z"]] == pytest.approx(10.0)
        assert cov[i["x"], i["z"]] == pytest.approx(4.0)

    def test_v_structure_independent_parents(self):
        net = LinearGaussianBayesianNetwork(edges=[("a", "c"), ("b", "c")])
        net.add_cpd(LinearGaussianCPD("a", 0.0, 1.0))
        net.add_cpd(LinearGaussianCPD("b", 0.0, 1.0))
        net.add_cpd(LinearGaussianCPD("c", 0.0, 0.5, parents=["a", "b"],
                                      weights=[1.0, 1.0]))
        order, _, cov = net.joint_parameters()
        i = {v: k for k, v in enumerate(order)}
        assert cov[i["a"], i["b"]] == pytest.approx(0.0)
        assert cov[i["c"], i["c"]] == pytest.approx(2.5)

    def test_sampling_matches_joint(self):
        net = chain_lg()
        rng = np.random.default_rng(3)
        draws = net.sample(rng, n=4000)
        z = np.array([d["z"] for d in draws])
        assert z.mean() == pytest.approx(-1.0, abs=0.2)
        assert z.var() == pytest.approx(10.0, rel=0.15)


class TestConditioning:
    def test_condition_on_parent(self):
        engine = GaussianInference(chain_lg())
        posterior = engine.posterior(["y"], evidence={"x": 3.0})
        assert posterior.mean_of("y") == pytest.approx(-1 + 0.5 * 3)
        assert posterior.variance_of("y") == pytest.approx(1.0)

    def test_condition_on_child_regresses_backward(self):
        engine = GaussianInference(chain_lg())
        posterior = engine.posterior(["x"], evidence={"y": 0.0})
        # Standard Gaussian conditioning: mu = 1 + (2/2)*(0-(-0.5)) = 1.5
        assert posterior.mean_of("x") == pytest.approx(1.5)
        # var = 4 - 2*2/2 = 2
        assert posterior.variance_of("x") == pytest.approx(2.0)

    def test_map_query_is_posterior_mean(self):
        engine = GaussianInference(chain_lg())
        assignment = engine.map_query(["x", "z"], evidence={"y": 1.0})
        posterior = engine.posterior(["x", "z"], evidence={"y": 1.0})
        assert assignment["x"] == pytest.approx(posterior.mean_of("x"))
        assert assignment["z"] == pytest.approx(posterior.mean_of("z"))

    def test_condition_no_evidence_is_identity(self):
        engine = GaussianInference(chain_lg())
        posterior = engine.posterior(["x", "y", "z"])
        assert posterior.mean_of("z") == pytest.approx(-1.0)

    def test_monte_carlo_agreement(self):
        """Conditioning matches rejection-free ancestral regression."""
        net = chain_lg()
        engine = GaussianInference(net)
        rng = np.random.default_rng(11)
        draws = net.sample(rng, n=20000)
        x = np.array([d["x"] for d in draws])
        y = np.array([d["y"] for d in draws])
        window = np.abs(y - 1.0) < 0.05
        empirical = x[window].mean()
        analytic = engine.posterior(["x"], evidence={"y": 1.0}).mean_of("x")
        assert empirical == pytest.approx(analytic, abs=0.15)


class TestGaussianDistribution:
    def test_symmetry_enforced(self):
        with pytest.raises(ValueError):
            GaussianDistribution(["a", "b"], [0, 0],
                                 [[1.0, 0.5], [0.4, 1.0]])

    def test_marginalize(self):
        dist = GaussianDistribution(["a", "b"], [1.0, 2.0],
                                    [[1.0, 0.3], [0.3, 2.0]])
        marginal = dist.marginalize(["b"])
        assert marginal.mean_of("b") == pytest.approx(2.0)
        assert marginal.variance_of("b") == pytest.approx(2.0)

    def test_unknown_variable(self):
        dist = GaussianDistribution(["a"], [0.0], [[1.0]])
        with pytest.raises(KeyError):
            dist.mean_of("b")

    def test_log_density_standard_normal(self):
        dist = GaussianDistribution(["a"], [0.0], [[1.0]])
        assert dist.log_density({"a": 0.0}) == pytest.approx(
            -0.5 * np.log(2 * np.pi))

    def test_degenerate_conditioning_from_zero_variance(self):
        # Singular evidence block must not blow up (pinv path).
        dist = GaussianDistribution(
            ["a", "b"], [0.0, 0.0], [[0.0, 0.0], [0.0, 1.0]])
        posterior = dist.condition({"a": 5.0})
        assert posterior.mean_of("b") == pytest.approx(0.0)
