"""Tests for dynamic Bayesian networks (temporal unrolling + training)."""

import numpy as np
import pytest

from repro.bayesnet import (DynamicBayesianNetwork, GaussianInference,
                            slice_node, split_slice_node)


def ar1_template():
    """Single-variable AR(1) template: v_t -> v_{t+1}."""
    return DynamicBayesianNetwork(["v"], intra_edges=[],
                                  inter_edges=[("v", "v")])


def two_var_template():
    """Throttle drives velocity within a slice; both persist over time."""
    return DynamicBayesianNetwork(
        ["throttle", "v"],
        intra_edges=[("throttle", "v")],
        inter_edges=[("v", "v"), ("throttle", "throttle")])


class TestNaming:
    def test_slice_node_round_trip(self):
        node = slice_node("v", 2)
        assert node == "v@2"
        assert split_slice_node(node) == ("v", 2)

    def test_split_handles_separator_in_name(self):
        node = slice_node("a@b", 1)
        assert split_slice_node(node) == ("a@b", 1)


class TestUnrolling:
    def test_unrolled_node_count(self):
        dag = two_var_template().unrolled_dag(3)
        assert len(dag) == 6

    def test_intra_edges_replicated(self):
        dag = two_var_template().unrolled_dag(2)
        assert ("throttle@1", "v@1") in dag.edges()

    def test_inter_edges_link_slices(self):
        dag = two_var_template().unrolled_dag(3)
        assert ("v@0", "v@1") in dag.edges()
        assert ("v@1", "v@2") in dag.edges()
        assert ("v@0", "v@2") not in dag.edges()

    def test_single_slice_has_no_inter_edges(self):
        dag = two_var_template().unrolled_dag(1)
        assert dag.edges() == [("throttle@0", "v@0")]

    def test_bad_slice_count(self):
        with pytest.raises(ValueError):
            two_var_template().unrolled_dag(0)

    def test_unknown_edge_variable_rejected(self):
        with pytest.raises(ValueError):
            DynamicBayesianNetwork(["a"], intra_edges=[("a", "b")])


class TestWindowDataset:
    def test_window_count(self):
        template = ar1_template()
        traces = [{"v": np.arange(10.0)}]
        data = template.window_dataset(traces, n_slices=3)
        assert len(data["v@0"]) == 8

    def test_window_alignment(self):
        template = ar1_template()
        traces = [{"v": np.array([1.0, 2.0, 3.0, 4.0])}]
        data = template.window_dataset(traces, n_slices=2)
        assert np.allclose(data["v@0"], [1, 2, 3])
        assert np.allclose(data["v@1"], [2, 3, 4])

    def test_multiple_traces_concatenated(self):
        template = ar1_template()
        traces = [{"v": np.arange(5.0)}, {"v": np.arange(4.0)}]
        data = template.window_dataset(traces, n_slices=3)
        assert len(data["v@0"]) == 3 + 2

    def test_short_traces_skipped(self):
        template = ar1_template()
        traces = [{"v": np.array([1.0])}, {"v": np.arange(4.0)}]
        data = template.window_dataset(traces, n_slices=3)
        assert len(data["v@0"]) == 2

    def test_all_short_raises(self):
        template = ar1_template()
        with pytest.raises(ValueError):
            template.window_dataset([{"v": np.array([1.0])}], n_slices=3)

    def test_ragged_trace_rejected(self):
        template = two_var_template()
        bad = [{"throttle": np.arange(5.0), "v": np.arange(4.0)}]
        with pytest.raises(ValueError):
            template.window_dataset(bad, n_slices=2)


class TestFitting:
    def test_fit_recovers_ar1_dynamics(self):
        rng = np.random.default_rng(0)
        traces = []
        for _ in range(20):
            v = [rng.normal(0, 1)]
            for _ in range(99):
                v.append(0.8 * v[-1] + 1.0 + rng.normal(0, 0.1))
            traces.append({"v": np.array(v)})
        model = ar1_template().fit_linear_gaussian(traces, n_slices=3)
        cpd = model.cpds["v@1"]
        assert cpd.parents == ("v@0",)
        assert cpd.weights[0] == pytest.approx(0.8, abs=0.02)
        assert cpd.intercept == pytest.approx(1.0, abs=0.1)

    def test_fit_prediction_two_steps_ahead(self):
        rng = np.random.default_rng(1)
        traces = []
        for _ in range(30):
            v = [float(rng.normal(10, 2))]
            for _ in range(60):
                v.append(0.5 * v[-1] + 2.0 + rng.normal(0, 0.05))
            traces.append({"v": np.array(v)})
        model = ar1_template().fit_linear_gaussian(traces, n_slices=3)
        engine = GaussianInference(model)
        predicted = engine.map_query(["v@2"], evidence={"v@0": 8.0})
        # Two AR steps: 0.5*(0.5*8+2)+2 = 5
        assert predicted["v@2"] == pytest.approx(5.0, abs=0.2)

    def test_fit_discrete_dynamics(self):
        rng = np.random.default_rng(2)
        # Binary Markov chain with strong persistence.
        traces = []
        for _ in range(30):
            states = [int(rng.integers(2))]
            for _ in range(80):
                stay = 0.9
                states.append(states[-1] if rng.random() < stay
                              else 1 - states[-1])
            traces.append({"v": np.array(states)})
        template = ar1_template()
        model = template.fit_discrete(traces, {"v": 2}, n_slices=2,
                                      pseudocount=0.5)
        table = model.cpds["v@1"].table
        assert table[0, 0] == pytest.approx(0.9, abs=0.05)
        assert table[1, 1] == pytest.approx(0.9, abs=0.05)
