"""Property-based tests (hypothesis): batched lanes == scalar worlds.

The batched engine's contract is *bitwise* equality with the scalar
:class:`~repro.sim.world.World` oracle, lane for lane, under any lane
count, lane order, retirement pattern, or snapshot/restore cut.  These
properties fuzz that contract directly at the
:class:`~repro.sim.batch.BatchWorldState` level (the campaign-level
equivalence suite covers the full driver stack).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import BatchWorldState
from repro.sim.scenario import scenario_by_name

DT = 0.1
SCENARIOS = ["highway_cruise", "lead_vehicle_cutin", "braking_lead"]

lane_controls = st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0),
                          st.floats(-0.1, 0.1))
batches = st.lists(lane_controls, min_size=1, max_size=6)
scenario_names = st.sampled_from(SCENARIOS)
step_counts = st.integers(1, 60)


def _worlds(name, n):
    scenario = scenario_by_name(name)
    return [scenario.make_world() for _ in range(n)]


def _state_tuple(world):
    """Every float the engines advance, as exact Python floats."""
    s = world.ego.state
    return ((s.x, s.y, s.v, s.theta, s.phi), world.time,
            tuple((npc.x, npc.y, npc.v, npc._lane_start_y,
                   len(npc.lane_commands)) for npc in world.npcs))


def _run_scalar(name, controls, n_steps):
    worlds = _worlds(name, len(controls))
    for _ in range(n_steps):
        for world, (throttle, brake, steering) in zip(worlds, controls):
            world.step(throttle, brake, steering, DT)
    return [_state_tuple(world) for world in worlds]


def _run_batched(name, controls, n_steps, retire_at=None, retired=()):
    worlds = _worlds(name, len(controls))
    batch = BatchWorldState(worlds)
    for step in range(n_steps):
        if retire_at is not None and step == retire_at:
            for lane in retired:
                batch.deactivate(lane)
        for lane, (throttle, brake, steering) in enumerate(controls):
            if batch.active[lane]:
                batch.set_controls(lane, throttle, brake, steering, DT)
        batch.step(DT)
        # The driver scatters every tick so controllers read fresh state;
        # ``set_controls`` derives actuation from the lane world's ego.
        batch.scatter()
    return [_state_tuple(world) for world in batch.worlds]


class TestLockstepEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(scenario_names, batches, step_counts)
    def test_lanes_match_scalar_worlds_bitwise(self, name, controls,
                                               n_steps):
        scalar = _run_scalar(name, controls, n_steps)
        batched = _run_batched(name, controls, n_steps)
        assert batched == scalar    # tuple equality: exact floats

    @settings(max_examples=20, deadline=None)
    @given(scenario_names, batches, step_counts, st.randoms())
    def test_lane_order_is_irrelevant(self, name, controls, n_steps,
                                      rng):
        order = list(range(len(controls)))
        rng.shuffle(order)
        permuted = [controls[i] for i in order]
        straight = _run_batched(name, controls, n_steps)
        shuffled = _run_batched(name, permuted, n_steps)
        for lane, source in enumerate(order):
            assert shuffled[lane] == straight[source]


class TestLaneRetirement:
    @settings(max_examples=20, deadline=None)
    @given(scenario_names,
           st.lists(lane_controls, min_size=2, max_size=6),
           st.integers(1, 40), st.integers(1, 20), st.data())
    def test_retired_lanes_do_not_perturb_survivors(self, name, controls,
                                                    before, after, data):
        retired = data.draw(st.sets(
            st.integers(0, len(controls) - 1), min_size=1,
            max_size=len(controls) - 1))
        survivors = [lane for lane in range(len(controls))
                     if lane not in retired]
        full = _run_batched(name, controls, before + after,
                            retire_at=before, retired=sorted(retired))
        alone = _run_batched(name, [controls[lane] for lane in survivors],
                             before + after)
        for position, lane in enumerate(survivors):
            assert full[lane] == alone[position]


class TestSnapshotRestore:
    @settings(max_examples=20, deadline=None)
    @given(scenario_names, batches, st.integers(0, 30),
           st.integers(1, 30))
    def test_round_trip_replays_bitwise(self, name, controls, prefix,
                                        suffix):
        worlds = _worlds(name, len(controls))
        batch = BatchWorldState(worlds)

        def advance(n_steps):
            for _ in range(n_steps):
                for lane, (throttle, brake, steering) \
                        in enumerate(controls):
                    batch.set_controls(lane, throttle, brake, steering,
                                       DT)
                batch.step(DT)
                batch.scatter()

        advance(prefix)
        snapshot = batch.snapshot()
        at_cut = [_state_tuple(world) for world in batch.worlds]
        advance(suffix)
        batch.scatter()
        first = [_state_tuple(world) for world in batch.worlds]

        batch.restore(snapshot)
        batch.scatter()
        assert [_state_tuple(world) for world in batch.worlds] == at_cut
        advance(suffix)
        batch.scatter()
        second = [_state_tuple(world) for world in batch.worlds]
        assert second == first
        assert np.array_equal(batch.active, snapshot.active)
