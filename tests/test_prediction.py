"""Tests for obstacle trajectory prediction."""

import numpy as np
import pytest

from repro.ads import (NO_COLLISION, TrackedObject, minimum_predicted_gap,
                       predict_positions, time_to_collision)


def track(x=50.0, vx=20.0, y=5.5, vy=0.0):
    return TrackedObject(track_id=1, x=x, y=y, vx=vx, vy=vy)


class TestPredictPositions:
    def test_constant_velocity_line(self):
        positions = predict_positions(track(x=10.0, vx=4.0), horizon=1.0,
                                      dt=0.5)
        assert np.allclose(positions[:, 0], [10.0, 12.0, 14.0])

    def test_lateral_motion(self):
        positions = predict_positions(track(y=2.0, vy=1.0), horizon=1.0,
                                      dt=1.0)
        assert positions[-1, 1] == pytest.approx(3.0)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            predict_positions(track(), horizon=0.0)


class TestTimeToCollision:
    def test_closing(self):
        ttc = time_to_collision(0.0, 30.0, track(x=54.8, vx=20.0))
        assert ttc == pytest.approx(5.0)

    def test_opening_gap_no_collision(self):
        assert time_to_collision(0.0, 20.0, track(vx=30.0)) == NO_COLLISION

    def test_equal_speeds_no_collision(self):
        assert time_to_collision(0.0, 20.0, track(vx=20.0)) == NO_COLLISION

    def test_overlapping_bodies_zero(self):
        assert time_to_collision(0.0, 10.0, track(x=2.0, vx=0.0)) == 0.0


class TestMinimumPredictedGap:
    def test_constant_closing(self):
        gap = minimum_predicted_gap(0.0, 30.0, track(x=104.8, vx=20.0),
                                    horizon=5.0, dt=0.5)
        # After 5 s the gap shrank by 50 m.
        assert gap == pytest.approx(50.0)

    def test_opening_gap_minimum_is_now(self):
        gap = minimum_predicted_gap(0.0, 10.0, track(x=54.8, vx=30.0),
                                    horizon=5.0)
        assert gap == pytest.approx(50.0)
