"""Tests for the closed-loop experiment engine."""

import pytest

from repro.core import FaultSpec, Hazard, run_scenario
from repro.core.simulate import TRACE_COLUMNS
from repro.sim import empty_road, highway_cruise, lead_vehicle_cutin


class TestGoldenRuns:
    def test_empty_road_is_safe(self):
        result = run_scenario(empty_road(), seed=0)
        assert result.hazard is Hazard.NONE
        assert not result.collided
        assert result.min_delta_long > 50.0

    def test_trace_schema(self):
        result = run_scenario(empty_road(), seed=0, duration=5.0)
        assert set(result.trace.columns) == set(TRACE_COLUMNS)
        assert len(result.trace) > 0

    def test_trace_sampled_at_planner_rate(self):
        result = run_scenario(empty_road(), seed=0, duration=5.0)
        # 20 Hz control, divisor 2 -> 10 planner samples per second.
        assert len(result.trace) == pytest.approx(50, abs=2)

    def test_duration_override(self):
        result = run_scenario(empty_road(), seed=0, duration=2.0)
        assert result.sim_seconds == pytest.approx(2.0, abs=0.1)

    def test_deterministic_given_seed(self):
        a = run_scenario(highway_cruise(), seed=3, duration=10.0)
        b = run_scenario(highway_cruise(), seed=3, duration=10.0)
        assert a.trace.column("v").tolist() == b.trace.column("v").tolist()

    def test_seed_changes_noise(self):
        a = run_scenario(highway_cruise(), seed=1, duration=10.0)
        b = run_scenario(highway_cruise(), seed=2, duration=10.0)
        assert a.trace.column("v").tolist() != b.trace.column("v").tolist()

    def test_no_trace_mode(self):
        result = run_scenario(empty_road(), seed=0, duration=5.0,
                              record_trace=False)
        assert len(result.trace) == 0
        assert result.hazard is Hazard.NONE


class TestFaultedRuns:
    def test_fault_landed_flag(self):
        fault = FaultSpec("throttle", 1.0, start_tick=20, duration_ticks=2)
        result = run_scenario(empty_road(), seed=0, faults=[fault],
                              duration=10.0)
        assert result.landed

    def test_fault_on_missing_target_not_landed(self):
        fault = FaultSpec("tracked_gap", 0.0, start_tick=20,
                          duration_ticks=2)
        result = run_scenario(empty_road(), seed=0, faults=[fault],
                              duration=10.0)
        assert not result.landed   # no lead to corrupt on an empty road

    def test_pre_delta_measured_at_fault(self):
        fault = FaultSpec("throttle", 1.0, start_tick=100,
                          duration_ticks=2)
        result = run_scenario(highway_cruise(), seed=0, faults=[fault])
        assert result.pre_delta_long < 200.0   # a lead exists
        assert result.pre_delta_long > 0.0

    def test_horizon_truncates_run(self):
        fault = FaultSpec("throttle", 1.0, start_tick=40, duration_ticks=2)
        result = run_scenario(highway_cruise(), seed=0, faults=[fault],
                              horizon_after_fault=3.0)
        # 40 ticks = 2 s, plus fault + 3 s horizon: well under 40 s.
        assert result.sim_seconds < 7.0

    def test_cruise_throttle_fault_masked(self):
        """Plenty of margin: a throttle burst is absorbed (paper Sec II-C)."""
        fault = FaultSpec("throttle", 1.0, start_tick=200,
                          duration_ticks=2)
        result = run_scenario(highway_cruise(), seed=0, faults=[fault])
        assert result.hazard is Hazard.NONE

    def test_cutin_throttle_fault_hazardous(self):
        """Paper Example 1: max throttle at the cut-in instant."""
        fault = FaultSpec("throttle", 1.0, start_tick=96,
                          duration_ticks=10)
        result = run_scenario(lead_vehicle_cutin(), seed=0, faults=[fault])
        assert result.hazard is not Hazard.NONE
        assert result.min_delta_long <= 0.0

    def test_steering_fault_leaves_road(self):
        fault = FaultSpec("steering", 0.55, start_tick=100,
                          duration_ticks=20)
        result = run_scenario(empty_road(), seed=0, faults=[fault])
        assert result.hazard in (Hazard.OFF_ROAD, Hazard.SAFETY_VIOLATION)
