"""Legacy setuptools shim.

The execution environment is offline and has no ``wheel`` package, so
PEP 517 editable installs fail; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on newer toolchains) works with
this shim.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
